package cpu

import "lvmm/internal/isa"

// Predecoded execution engine.
//
// The interpreter's per-instruction cost is dominated by refetching and
// redecoding the same words over and over: a tight guest loop pays a bus
// read, an opcode extraction, and four field extractions on every trip.
// The decode cache removes that: instruction words are decoded once into
// physical-page-indexed arrays of predecoded micro-ops, and StepFast
// dispatches on the cached form.
//
// The cache is indexed by *physical* page, so remapping a virtual page to
// a different frame, a TLB flush, or a PTBR change needs no invalidation —
// every fetch still translates its PC through the TLB (which also
// preserves TLB-miss cycle accounting exactly), and cached decodes are a
// pure function of RAM contents. Physical indexing is what makes the
// monitor's constant world-switch TLB flushes free for the decode cache;
// the virtually-indexed alternative re-decodes the working set on every
// switch (measured ~3× slower on the Figure 3.1 macro benchmark). What
// does invalidate a page:
//
//   - any write into it: CPU stores and page-walk A/D updates arrive via
//     the bus write-notify hook installed at construction; MOVS/STOS and
//     debugger WriteVirt patches invalidate directly (they bypass the bus
//     write path and write RAM in place); device DMA arrives via the bus
//     hook (bus.Write*/DMAWrite) or bus.NotifyWrite for in-place fills;
//   - Reset and Restore (the cache starts cold after a snapshot restore,
//     which is safe because decode state is invisible to the timeline: a
//     cold cache re-decodes but charges identical cycles).
//
// Nothing in the cache affects architectural state or cycle accounting, so
// slow-path and fast-path execution are bit-identical; the differential
// tests in decode_test.go enforce this instruction by instruction.

// Micro-op kinds. fnUnset marks an undecoded slot; fnSlow routes the word
// through the full interpreter switch (execute) and ends a burst — it
// covers every op that can touch machine-level state (port I/O, PSR/CR
// writes, HLT, traps, string ops) plus undefined encodings.
const (
	fnUnset uint8 = iota
	// fnPrivOp marks the unconditionally privileged ops (CLI, STI, IRET,
	// HLT, MOVCR, MOVRC, TLBINV): below monitor level they always raise
	// CausePriv, so BurstRun delivers that trap straight from the
	// dispatcher — precomputed base cycles in imm, vaddr from raw —
	// without the interpreter round trip. At monitor level (and in
	// StepFast) they take the fnSlow route through execute.
	fnPrivOp
	fnSlow

	// Straight-line ops: cannot halt, cannot change PSR/CRs, cannot touch
	// ports, cannot arm observers. A burst may continue after them.
	fnADD
	fnSUB
	fnAND
	fnOR
	fnXOR
	fnSHL
	fnSHR
	fnSRA
	fnSLT
	fnSLTU
	fnMUL
	fnDIVU
	fnREMU
	fnADDI
	fnANDI
	fnORI
	fnXORI
	fnSHLI
	fnSHRI
	fnSRAI
	fnLUI
	fnLW
	fnLH
	fnLHU
	fnLB
	fnLBU
	fnSW
	fnSH
	fnSB
	fnBEQ
	fnBNE
	fnBLT
	fnBGE
	fnBLTU
	fnBGEU
	fnJAL
	fnJALR
)

// decoded is one predecoded instruction: the dispatch kind, pre-extracted
// register fields, and the immediate in its ready-to-use form (sign- or
// zero-extended, pre-masked shift amounts, pre-shifted LUI value,
// pre-scaled branch/jump displacement including the +4). raw keeps the
// original word for the fnSlow path and for trap vaddr reporting.
type decoded struct {
	fn  uint8
	rd  uint8
	rs1 uint8
	rs2 uint8
	imm uint32
	raw uint32
}

// decPage holds the predecoded instructions of one physical page, decoded
// lazily as they are first executed. A page is live only while its gen
// matches the CPU's current decode generation.
type decPage struct {
	gen uint32
	ins [isa.PageSize / 4]decoded
}

// decodeWord predecodes one instruction word.
func decodeWord(w uint32) decoded {
	d := decoded{
		rd:  uint8(isa.Rd(w)),
		rs1: uint8(isa.Rs1(w)),
		rs2: uint8(isa.Rs2(w)),
		raw: w,
	}
	switch isa.Opcode(w) {
	case isa.OpADD:
		d.fn = fnADD
	case isa.OpSUB:
		d.fn = fnSUB
	case isa.OpAND:
		d.fn = fnAND
	case isa.OpOR:
		d.fn = fnOR
	case isa.OpXOR:
		d.fn = fnXOR
	case isa.OpSHL:
		d.fn = fnSHL
	case isa.OpSHR:
		d.fn = fnSHR
	case isa.OpSRA:
		d.fn = fnSRA
	case isa.OpSLT:
		d.fn = fnSLT
	case isa.OpSLTU:
		d.fn = fnSLTU
	case isa.OpMUL:
		d.fn = fnMUL
	case isa.OpDIVU:
		d.fn = fnDIVU
	case isa.OpREMU:
		d.fn = fnREMU
	case isa.OpADDI:
		d.fn, d.imm = fnADDI, uint32(isa.Imm18(w))
	case isa.OpANDI:
		d.fn, d.imm = fnANDI, isa.Imm18U(w)
	case isa.OpORI:
		d.fn, d.imm = fnORI, isa.Imm18U(w)
	case isa.OpXORI:
		d.fn, d.imm = fnXORI, isa.Imm18U(w)
	case isa.OpSHLI:
		d.fn, d.imm = fnSHLI, isa.Imm18U(w)&31
	case isa.OpSHRI:
		d.fn, d.imm = fnSHRI, isa.Imm18U(w)&31
	case isa.OpSRAI:
		d.fn, d.imm = fnSRAI, isa.Imm18U(w)&31
	case isa.OpLUI:
		d.fn, d.imm = fnLUI, isa.Imm18U(w)<<14
	case isa.OpLW:
		d.fn, d.imm = fnLW, uint32(isa.Imm18(w))
	case isa.OpLH:
		d.fn, d.imm = fnLH, uint32(isa.Imm18(w))
	case isa.OpLHU:
		d.fn, d.imm = fnLHU, uint32(isa.Imm18(w))
	case isa.OpLB:
		d.fn, d.imm = fnLB, uint32(isa.Imm18(w))
	case isa.OpLBU:
		d.fn, d.imm = fnLBU, uint32(isa.Imm18(w))
	case isa.OpSW:
		d.fn, d.imm = fnSW, uint32(isa.Imm18(w))
	case isa.OpSH:
		d.fn, d.imm = fnSH, uint32(isa.Imm18(w))
	case isa.OpSB:
		d.fn, d.imm = fnSB, uint32(isa.Imm18(w))
	case isa.OpBEQ:
		d.fn, d.imm = fnBEQ, uint32(isa.Imm18(w)*4+4)
	case isa.OpBNE:
		d.fn, d.imm = fnBNE, uint32(isa.Imm18(w)*4+4)
	case isa.OpBLT:
		d.fn, d.imm = fnBLT, uint32(isa.Imm18(w)*4+4)
	case isa.OpBGE:
		d.fn, d.imm = fnBGE, uint32(isa.Imm18(w)*4+4)
	case isa.OpBLTU:
		d.fn, d.imm = fnBLTU, uint32(isa.Imm18(w)*4+4)
	case isa.OpBGEU:
		d.fn, d.imm = fnBGEU, uint32(isa.Imm18(w)*4+4)
	case isa.OpJAL:
		d.fn, d.imm = fnJAL, uint32(isa.Imm22(w)*4+4)
	case isa.OpJALR:
		d.fn, d.imm = fnJALR, uint32(isa.Imm18(w))
	case isa.OpCLI, isa.OpSTI, isa.OpIRET, isa.OpHLT,
		isa.OpMOVCR, isa.OpMOVRC, isa.OpTLBINV:
		d.fn, d.imm = fnPrivOp, uint32(isa.OpCycles(isa.Opcode(w)))
	default:
		d.fn = fnSlow
	}
	return d
}

// decodeLookup returns the predecoded instruction at physical address pa,
// decoding (and allocating the page) on demand. nil means pa is not
// word-readable RAM — the caller raises the same bus error the slow-path
// fetch would.
func (c *CPU) decodeLookup(pa uint32) *decoded {
	pfn := pa >> isa.PageShift
	if pfn >= uint32(len(c.dcPages)) {
		return nil
	}
	pg := c.dcPages[pfn]
	if pg == nil || pg.gen != c.dcGen {
		pg = &decPage{gen: c.dcGen}
		c.dcPages[pfn] = pg
	}
	d := &pg.ins[(pa&isa.PageMask)>>2]
	if d.fn == fnUnset {
		w, ok := c.bus.Read32(pa)
		if !ok {
			return nil
		}
		*d = decodeWord(w)
	}
	return d
}

// dcInvalidate drops predecoded state covering [addr, addr+n). It is the
// bus write-notify hook, and is also called directly by the in-place RAM
// writers (MOVS/STOS, WriteVirt).
//
// Small writes (a store-sized span inside one page) clear just the touched
// entries, keeping the page live: guest kernels routinely pack data into
// the same 4 KB pages as code, and dropping the whole page on every such
// store re-allocates and re-decodes it in a ping-pong that dominated the
// macro benchmarks. Bulk writes (DMA, string ops) drop whole pages.
func (c *CPU) dcInvalidate(addr, n uint32) {
	if n == 0 {
		return
	}
	c.writeCov |= coverageBits(addr, n)
	if c.dirtyPages != nil {
		c.markDirty(addr, n)
	}
	first := addr >> isa.PageShift
	if first >= uint32(len(c.dcPages)) {
		return
	}
	if (addr&isa.PageMask)+n <= isa.PageSize && n <= 8 {
		i0 := (addr & isa.PageMask) >> 2
		i1 := ((addr & isa.PageMask) + n - 1) >> 2
		if pg := c.dcPages[first]; pg != nil {
			for i := i0; i <= i1; i++ {
				pg.ins[i].fn = fnUnset
			}
		}
		// Superblocks copy their micro-ops, so per-entry clearing cannot
		// reach them: bump the page epoch when the write lands inside the
		// extent its blocks were built from (chain edges into the page
		// validate against the same epoch).
		if sp := c.sbPages[first]; sp != nil && sp.gen == c.dcGen && sp.lo <= i1 && i0 <= sp.hi {
			sbInvalidatePage(sp)
		}
		return
	}
	last := (addr + n - 1) >> isa.PageShift
	if last >= uint32(len(c.dcPages)) {
		last = uint32(len(c.dcPages)) - 1
	}
	c.dcBulkGen++
	for p := first; p <= last; p++ {
		if c.dcPages[p] != nil {
			c.dcPages[p] = nil
		}
		if sp := c.sbPages[p]; sp != nil && sp.gen == c.dcGen {
			sbInvalidatePage(sp)
		}
	}
}

// dcFlush discards the whole decode cache by advancing the generation.
// Pages are re-decoded lazily on next execution; the allocations are
// reclaimed as lookups replace stale pages.
func (c *CPU) dcFlush() { c.dcGen++ }

// BurstSafe reports whether the CPU may execute predecoded straight-line
// bursts. Debug observers no longer disqualify bursts wholesale: hardware
// breakpoints are checked page-granularly inside BurstRun, and watch/spy
// ranges gate only the stores that could land in them (see observers.go).
// What still forces the per-instruction interpreter is the trap flag — TF
// is a per-instruction observer by definition — and the explicit
// ForceSlowEngine knob. The machine checks BurstSafe once per burst entry
// and after every fused trap; every operation that could set TF mid-burst
// reaches the CPU through a trap or an fnSlow instruction, both of which
// re-check before the burst continues.
func (c *CPU) BurstSafe() bool {
	return !c.forceSlow && c.PSR&isa.PSRTF == 0
}

// BurstBreak explains why BurstRun stopped.
type BurstBreak int

const (
	// BurstHorizon: the clock reached the event horizon.
	BurstHorizon BurstBreak = iota
	// BurstBudget: the tick budget (poll countdown / stop-at-instruction
	// allowance) ran out.
	BurstBudget
	// BurstSync: a slow instruction (port I/O, PSR/CR writes, HLT, string
	// ops, undefined encodings) was executed inline through the full
	// interpreter and machine-level state may have changed — halt, idle,
	// pending interrupts, new events. The caller re-establishes its
	// invariants before the next burst. (With a resume hook the burst
	// re-validates and continues in place; BurstSync surfaces only when
	// the hook is nil or declines.)
	BurstSync
	// BurstTrap: the last counted tick raised a trap (including fetch
	// faults). The caller must check Wedged and re-establish invariants.
	BurstTrap
)

// BurstResume is the inline diverter hook consulted when a trap raised
// mid-burst was fully handled by the Diverter (DivertResume): it decides
// whether the burst may continue predecoded and, if so, supplies a fresh
// event horizon — the monitor's cycle charges consumed part of the old one,
// and its emulation may have scheduled new device events or made an
// interrupt deliverable. Returning ok=false surfaces BurstTrap as before.
// The returned horizon must exceed the committed clock.
type BurstResume func() (horizon uint64, ok bool)

// BurstRun executes predecoded instructions until the clock (committed
// through clk after every instruction, so trap diverters and scheduled
// work observe exact time) reaches horizon, maxTicks ticks were consumed,
// an instruction traps, or a slow instruction resynchronizes with the
// machine. Returns the tick count consumed (every Step-equivalent,
// including a final faulting one) and the break reason.
//
// Slow instructions (port I/O, PSR/CR writes, HLT, string ops, undefined
// encodings) are executed inline through the full interpreter; afterwards
// the resume hook re-validates the machine's burst preconditions and
// supplies a fresh horizon — its emulated device work may have scheduled
// events or made an interrupt deliverable — so I/O-dense guests stay in
// the burst. A nil or declining hook surfaces BurstSync instead, with the
// slow instruction already retired on this tick.
//
// A trap consumed by the Diverter with DivertResume does not end the burst
// when resume grants a fresh horizon: delivery, monitor emulation, and the
// return to guest execution fuse into one crossing (nil resume restores
// the old always-exit behaviour). All other traps — architectural delivery,
// debug stops, faults reflected into the guest — surface as BurstTrap.
//
// Above the per-instruction path sits the superblock tier (superblock.go):
// straight-line runs dispatch as predecoded blocks with one fetch
// translation and one lookup per block entry, and hot taken edges chain
// block→block. Blocks never run on armed exec pages and bail to this loop
// on any invalidation, so the tier is invisible to the timeline.
//
// Preconditions are StepFast's: BurstSafe holds and the CPU is neither
// halted nor wedged; the caller guarantees *clk < horizon and maxTicks ≥ 1
// on entry. Architectural effects and cycle charges are bit-identical to
// an equivalent sequence of Step calls — including hardware breakpoints,
// which are checked page-granularly: the armed-page test (execPageArmed)
// is evaluated once per fetch-page crossing, and only instructions on an
// armed page pay Step's exact per-slot PC comparison. A hit disarms the
// slot one-shot and raises CauseBRK exactly as Step would, so the burst
// surfaces at the breakpoint instruction instead of never starting.
func (c *CPU) BurstRun(clk *uint64, horizon, maxTicks uint64, resume BurstResume) (ticks uint64, brk BurstBreak) {
	n := uint64(0)
	defer func() { c.burstTicks += n }()
	// PTBR can only change through fnSlow ops or trap handlers; both
	// re-derive the paging mode before the burst continues, so pagingOff is
	// loop-invariant between them. The same holds for the cached armed-page
	// test (bpVPN/bpArmed): observer slots only mutate through trap
	// diverters or slow ops mid-burst, so every fused resume resets the
	// cache to noVPN alongside the horizon and paging mode.
	pagingOff := !c.PagingEnabled()
	bpVPN, bpArmed := noVPN, false
	// A chain-link request left by a previous call is meaningless now.
	c.sbLink = nil
	// pend carries fetch-translation cycles already charged by a refused
	// superblock chain follow; they commit with the next instruction.
	var pend uint64
	// Register-cached decode page: fetches within one physical page skip
	// decodeLookup's dcPages load chain. The cache is sound while both
	// generations hold — dcGen catches flushes (a diverter's Restore),
	// dcBulkGen catches bulk invalidations that drop page objects (and so
	// also every path that could replace a live page object, since
	// replacement needs a nil or stale-gen slot). The in-place
	// invalidations that remain (aligned stores and page-walk A/D updates)
	// clear entries to fnUnset, which the re-decode below handles. cpg is
	// non-nil whenever cpfn is a real page number.
	cpfn := ^uint32(0)
	var cpg *decPage
	var cgen, cbgen uint32
	for {
		if n >= maxTicks {
			return n, BurstBudget
		}
		instPC := c.PC
		if c.hwBreakAny {
			if vpn := instPC >> isa.PageShift; vpn != bpVPN {
				bpVPN, bpArmed = vpn, c.execPageArmed(vpn)
			}
			if bpArmed {
				hit := false
				for i, en := range c.hwBreakEn {
					if en && c.hwBreak[i] == instPC {
						// One-shot disarm, exactly like Step: the handler
						// can resume past it; debuggers re-arm after
						// stepping.
						c.hwBreakEn[i] = false
						c.recalcObservers()
						hit = true
						break
					}
				}
				if hit {
					*clk += pend + c.raise(isa.CauseBRK, instPC, instPC)
					pend = 0
					n++
					if h, ok := c.fuseTrap(resume); ok {
						horizon, pagingOff = h, !c.PagingEnabled()
						bpVPN, bpArmed = noVPN, false
						continue
					}
					return n, BurstTrap
				}
			}
		}
		if instPC&3 != 0 {
			*clk += pend + c.raise(isa.CauseAlign, instPC, instPC)
			pend = 0
			n++
			if h, ok := c.fuseTrap(resume); ok {
				horizon, pagingOff = h, !c.PagingEnabled()
				bpVPN, bpArmed = noVPN, false
				continue
			}
			return n, BurstTrap
		}
		pa := instPC
		cyc := pend
		pend = 0
		if !pagingOff {
			// Inline TLB fetch-hit path (mirrors translate's hit arm for a
			// non-write access: matching live entry, user bit honored, zero
			// cycles); everything else takes the full translate.
			vpn := instPC >> isa.PageShift
			e := &c.tlb[vpn%tlbEntries]
			if e.Gen == c.tlbGen && e.VPN == vpn && (e.U || c.CPL() != isa.CPLUser) {
				pa = e.PFN<<isa.PageShift | instPC&isa.PageMask
			} else {
				var cause uint32
				var tcyc uint64
				pa, cause, tcyc = c.translate(instPC, false)
				cyc += tcyc
				if cause != isa.CauseNone {
					*clk += cyc + c.raise(cause, instPC, instPC)
					n++
					if h, ok := c.fuseTrap(resume); ok {
						horizon, pagingOff = h, !c.PagingEnabled()
						bpVPN, bpArmed = noVPN, false
						continue
					}
					return n, BurstTrap
				}
			}
		}
		var d *decoded
		if pfn := pa >> isa.PageShift; pfn == cpfn && c.dcGen == cgen && c.dcBulkGen == cbgen {
			d = &cpg.ins[(pa&isa.PageMask)>>2]
			if d.fn == fnUnset {
				if w, ok := c.bus.Read32(pa); ok {
					*d = decodeWord(w)
				} else {
					d = nil
				}
			}
		} else if d = c.decodeLookup(pa); d != nil {
			cpfn, cpg = pfn, c.dcPages[pfn]
			cgen, cbgen = c.dcGen, c.dcBulkGen
		}
		if d == nil {
			*clk += cyc + c.raise(isa.CauseBusError, instPC, instPC)
			n++
			if h, ok := c.fuseTrap(resume); ok {
				horizon, pagingOff = h, !c.PagingEnabled()
				bpVPN, bpArmed = noVPN, false
				continue
			}
			return n, BurstTrap
		}
		// Superblock dispatch: only when the first op is straight-line (a
		// block starting with a slow op or a terminator can never reach
		// sbMinLen, so slow-op-dense code — the trap benchmarks — never
		// pays a block lookup), on an unarmed page, and when the remaining
		// budget and the horizon cap admit a full worst-case block. A
		// pending chain-link request from a previous block's hot taken
		// exit is fulfilled here, where the target's block is known.
		if d.fn > fnSlow && d.fn < fnBEQ && !bpArmed {
			if b := c.sbLookup(pa); b != nil {
				if c.sbLink != nil {
					if c.sbLinkVA == instPC {
						c.sbLink.takenTo, c.sbLink.takenVA = b, instPC
					}
					c.sbLink = nil
				}
				if uint64(b.n) <= maxTicks-n && *clk+cyc+b.cycMax < horizon {
					var exit sbExit
					n, horizon, exit, pend = c.sbRun(b, clk, cyc, instPC, n, horizon, maxTicks, resume, pagingOff)
					if exit == sbTrapped {
						return n, BurstTrap
					}
					pagingOff = !c.PagingEnabled()
					bpVPN, bpArmed = noVPN, false
					if *clk >= horizon {
						return n, BurstHorizon
					}
					continue
				}
			}
		}
		if d.fn <= fnSlow {
			if d.fn == fnPrivOp && c.CPL() != isa.CPLMonitor {
				// Unconditionally privileged op below monitor level:
				// deliver CausePriv exactly as execute's trapStep would
				// (base cycles precomputed in imm, vaddr = raw word,
				// epc = instPC) without the interpreter round trip. The
				// divert branch of raise is open-coded — this is the
				// hottest trap site in monitor-dense guests, and the
				// fused-resume decision folds into the same branch.
				// Commit order matches raise: the diverter runs (and
				// charges monitor cycles) before the instruction's own
				// cyc+imm land on the clock, exactly as the interpreter
				// path orders it.
				c.Stat.Instructions++
				c.Stat.Traps++
				n++
				if c.Diverter != nil {
					if act := c.Diverter(isa.CausePriv, d.raw, instPC); act != DivertReflect {
						c.divertResumed = act == DivertResume
						*clk += cyc + uint64(d.imm)
						if act == DivertResume && resume != nil && !c.halted && !c.wedged {
							if h, ok := resume(); ok {
								horizon, pagingOff = h, !c.PagingEnabled()
								bpVPN, bpArmed = noVPN, false
								continue
							}
						}
						return n, BurstTrap
					}
				}
				c.divertResumed = false
				*clk += cyc + uint64(d.imm) + c.DeliverTrap(isa.CausePriv, d.raw, instPC)
				return n, BurstTrap
			}
			res := c.execute(instPC, d.raw)
			c.Stat.Instructions++
			*clk += res.Cycles + cyc
			n++
			if res.Trapped != isa.CauseNone {
				if h, ok := c.fuseTrap(resume); ok {
					horizon, pagingOff = h, !c.PagingEnabled()
					bpVPN, bpArmed = noVPN, false
					continue
				}
				return n, BurstTrap
			}
			if resume == nil {
				return n, BurstSync
			}
			h, ok := resume()
			if !ok {
				return n, BurstSync
			}
			horizon, pagingOff = h, !c.PagingEnabled()
			bpVPN, bpArmed = noVPN, false
			continue
		}
		if d.fn == fnJAL {
			// Unconditional jump: cannot trap and its effect is fully
			// static, so the executeFast call is skipped. Loop back-edges
			// in trap- and I/O-dense code are the hottest op left on the
			// per-instruction path (straight-line runs live in
			// superblocks).
			c.setRegFast(d.rd, instPC+4)
			c.PC = instPC + d.imm
			c.Stat.Instructions++
			*clk += uint64(isa.CycJump) + cyc
			n++
			if *clk >= horizon {
				return n, BurstHorizon
			}
			continue
		}
		res := c.executeFast(d, instPC)
		c.Stat.Instructions++
		*clk += res.Cycles + cyc
		n++
		if res.Trapped != isa.CauseNone {
			if h, ok := c.fuseTrap(resume); ok {
				horizon, pagingOff = h, !c.PagingEnabled()
				bpVPN, bpArmed = noVPN, false
				continue
			}
			return n, BurstTrap
		}
		if *clk >= horizon {
			return n, BurstHorizon
		}
	}
}

// fuseTrap decides whether a trap just raised mid-burst may be fused: the
// Diverter must have fully handled it (DivertResume) and the machine's
// resume hook must grant a fresh horizon. The horizon check is skipped on
// resume because the hook guarantees horizon > clock.
func (c *CPU) fuseTrap(resume BurstResume) (uint64, bool) {
	if !c.divertResumed || resume == nil || c.halted || c.wedged {
		return 0, false
	}
	return resume()
}

// StepFast executes one instruction through the decode cache. The caller
// must guarantee the BurstSafe preconditions and that the CPU is neither
// halted nor wedged. The bool result reports whether the burst may
// continue: true only for straight-line ops that completed without a trap.
// Architectural effects and cycle charges are bit-identical to Step.
func (c *CPU) StepFast() (StepResult, bool) {
	instPC := c.PC

	// Hardware breakpoints fire before execution, exactly as in Step.
	if c.hwBreakAny && c.execPageArmed(instPC>>isa.PageShift) {
		for i, en := range c.hwBreakEn {
			if en && c.hwBreak[i] == instPC {
				c.hwBreakEn[i] = false
				c.recalcObservers()
				cyc := c.raise(isa.CauseBRK, instPC, instPC)
				return StepResult{Cycles: cyc, Wedged: c.wedged, Trapped: isa.CauseBRK}, false
			}
		}
	}

	if instPC&3 != 0 {
		cyc := c.raise(isa.CauseAlign, instPC, instPC)
		return StepResult{Cycles: cyc, Wedged: c.wedged, Trapped: isa.CauseAlign}, false
	}
	pa, cause, cyc := c.translate(instPC, false)
	if cause != isa.CauseNone {
		cyc += c.raise(cause, instPC, instPC)
		return StepResult{Cycles: cyc, Wedged: c.wedged, Trapped: cause}, false
	}
	d := c.decodeLookup(pa)
	if d == nil {
		cyc += c.raise(isa.CauseBusError, instPC, instPC)
		return StepResult{Cycles: cyc, Wedged: c.wedged, Trapped: isa.CauseBusError}, false
	}

	var res StepResult
	pure := d.fn > fnSlow
	if pure {
		res = c.executeFast(d, instPC)
	} else {
		res = c.execute(instPC, d.raw)
	}
	res.Cycles += cyc
	c.Stat.Instructions++
	// The slow path's TF bookkeeping is skipped: PSR.TF is clear on entry
	// (BurstSafe) and straight-line ops cannot set it.
	res.Halted = c.halted
	res.Wedged = c.wedged
	return res, pure && res.Trapped == isa.CauseNone
}

func (c *CPU) setRegFast(r uint8, v uint32) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// fastTrap mirrors execute's trap helper: charge the op's base cycles (plus
// any translation extra folded into base by the caller) and deliver.
func (c *CPU) fastTrap(cause, vaddr, epc uint32, base uint64) StepResult {
	return StepResult{Cycles: base + c.raise(cause, vaddr, epc), Trapped: cause}
}

// executeFast runs one predecoded straight-line instruction, mirroring the
// corresponding arm of execute exactly — same results, same trap causes,
// same cycle charges. The store arms gate the slow path's spy/watch tail
// behind the armed write envelope (storeObserved): stores outside every
// armed page skip it — observably identical, since the per-slot
// intersection checks would have missed — and stores inside run the shared
// observedStore tail, bit-identical to Step.
func (c *CPU) executeFast(d *decoded, instPC uint32) StepResult {
	var v uint32
	switch d.fn {
	case fnLW:
		va := c.Regs[d.rs1] + d.imm
		if va&3 != 0 {
			return c.fastTrap(isa.CauseAlign, va, instPC, isa.CycLoad)
		}
		pa, cause, extra := c.translate(va, false)
		if cause != isa.CauseNone {
			return c.fastTrap(cause, va, instPC, isa.CycLoad+extra)
		}
		w, ok := c.bus.Read32(pa)
		if !ok {
			return c.fastTrap(isa.CauseBusError, va, instPC, isa.CycLoad+extra)
		}
		c.setRegFast(d.rd, w)
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycLoad + extra}
	case fnLH, fnLHU:
		va := c.Regs[d.rs1] + d.imm
		if va&1 != 0 {
			return c.fastTrap(isa.CauseAlign, va, instPC, isa.CycLoad)
		}
		pa, cause, extra := c.translate(va, false)
		if cause != isa.CauseNone {
			return c.fastTrap(cause, va, instPC, isa.CycLoad+extra)
		}
		h, ok := c.bus.Read16(pa)
		if !ok {
			return c.fastTrap(isa.CauseBusError, va, instPC, isa.CycLoad+extra)
		}
		if d.fn == fnLH {
			c.setRegFast(d.rd, uint32(int32(int16(h))))
		} else {
			c.setRegFast(d.rd, uint32(h))
		}
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycLoad + extra}
	case fnLB, fnLBU:
		va := c.Regs[d.rs1] + d.imm
		pa, cause, extra := c.translate(va, false)
		if cause != isa.CauseNone {
			return c.fastTrap(cause, va, instPC, isa.CycLoad+extra)
		}
		b, ok := c.bus.Read8(pa)
		if !ok {
			return c.fastTrap(isa.CauseBusError, va, instPC, isa.CycLoad+extra)
		}
		if d.fn == fnLB {
			c.setRegFast(d.rd, uint32(int32(int8(b))))
		} else {
			c.setRegFast(d.rd, uint32(b))
		}
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycLoad + extra}

	case fnSW:
		va := c.Regs[d.rs1] + d.imm
		if va&3 != 0 {
			return c.fastTrap(isa.CauseAlign, va, instPC, isa.CycStore)
		}
		pa, cause, extra := c.translate(va, true)
		if cause != isa.CauseNone {
			return c.fastTrap(cause, va, instPC, isa.CycStore+extra)
		}
		if !c.bus.Write32(pa, c.Regs[d.rd]) {
			return c.fastTrap(isa.CauseBusError, va, instPC, isa.CycStore+extra)
		}
		if c.storeObserved(va, 4) {
			return c.observedStore(va, 4, instPC, isa.CycStore+extra)
		}
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycStore + extra}
	case fnSH:
		va := c.Regs[d.rs1] + d.imm
		if va&1 != 0 {
			return c.fastTrap(isa.CauseAlign, va, instPC, isa.CycStore)
		}
		pa, cause, extra := c.translate(va, true)
		if cause != isa.CauseNone {
			return c.fastTrap(cause, va, instPC, isa.CycStore+extra)
		}
		if !c.bus.Write16(pa, uint16(c.Regs[d.rd])) {
			return c.fastTrap(isa.CauseBusError, va, instPC, isa.CycStore+extra)
		}
		if c.storeObserved(va, 2) {
			return c.observedStore(va, 2, instPC, isa.CycStore+extra)
		}
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycStore + extra}
	case fnSB:
		va := c.Regs[d.rs1] + d.imm
		pa, cause, extra := c.translate(va, true)
		if cause != isa.CauseNone {
			return c.fastTrap(cause, va, instPC, isa.CycStore+extra)
		}
		if !c.bus.Write8(pa, byte(c.Regs[d.rd])) {
			return c.fastTrap(isa.CauseBusError, va, instPC, isa.CycStore+extra)
		}
		if c.storeObserved(va, 1) {
			return c.observedStore(va, 1, instPC, isa.CycStore+extra)
		}
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycStore + extra}

	case fnBEQ:
		return c.branch(c.Regs[d.rd] == c.Regs[d.rs1], d, instPC)
	case fnBNE:
		return c.branch(c.Regs[d.rd] != c.Regs[d.rs1], d, instPC)
	case fnBLT:
		return c.branch(int32(c.Regs[d.rd]) < int32(c.Regs[d.rs1]), d, instPC)
	case fnBGE:
		return c.branch(int32(c.Regs[d.rd]) >= int32(c.Regs[d.rs1]), d, instPC)
	case fnBLTU:
		return c.branch(c.Regs[d.rd] < c.Regs[d.rs1], d, instPC)
	case fnBGEU:
		return c.branch(c.Regs[d.rd] >= c.Regs[d.rs1], d, instPC)

	case fnJAL:
		c.setRegFast(d.rd, instPC+4)
		c.PC = instPC + d.imm
		return StepResult{Cycles: isa.CycJump}
	case fnJALR:
		target := c.Regs[d.rs1] + d.imm
		c.setRegFast(d.rd, instPC+4)
		c.PC = target
		return StepResult{Cycles: isa.CycJump}

	case fnADD:
		v = c.Regs[d.rs1] + c.Regs[d.rs2]
	case fnSUB:
		v = c.Regs[d.rs1] - c.Regs[d.rs2]
	case fnAND:
		v = c.Regs[d.rs1] & c.Regs[d.rs2]
	case fnOR:
		v = c.Regs[d.rs1] | c.Regs[d.rs2]
	case fnXOR:
		v = c.Regs[d.rs1] ^ c.Regs[d.rs2]
	case fnSHL:
		v = c.Regs[d.rs1] << (c.Regs[d.rs2] & 31)
	case fnSHR:
		v = c.Regs[d.rs1] >> (c.Regs[d.rs2] & 31)
	case fnSRA:
		v = uint32(int32(c.Regs[d.rs1]) >> (c.Regs[d.rs2] & 31))
	case fnSLT:
		if int32(c.Regs[d.rs1]) < int32(c.Regs[d.rs2]) {
			v = 1
		}
	case fnSLTU:
		if c.Regs[d.rs1] < c.Regs[d.rs2] {
			v = 1
		}
	case fnMUL:
		c.setRegFast(d.rd, c.Regs[d.rs1]*c.Regs[d.rs2])
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycMUL}
	case fnDIVU:
		div := c.Regs[d.rs2]
		if div == 0 {
			v = 0xFFFFFFFF
		} else {
			v = c.Regs[d.rs1] / div
		}
		c.setRegFast(d.rd, v)
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycDIV}
	case fnREMU:
		div := c.Regs[d.rs2]
		if div == 0 {
			v = c.Regs[d.rs1]
		} else {
			v = c.Regs[d.rs1] % div
		}
		c.setRegFast(d.rd, v)
		c.PC = instPC + 4
		return StepResult{Cycles: isa.CycDIV}
	case fnADDI:
		v = c.Regs[d.rs1] + d.imm
	case fnANDI:
		v = c.Regs[d.rs1] & d.imm
	case fnORI:
		v = c.Regs[d.rs1] | d.imm
	case fnXORI:
		v = c.Regs[d.rs1] ^ d.imm
	case fnSHLI:
		v = c.Regs[d.rs1] << d.imm
	case fnSHRI:
		v = c.Regs[d.rs1] >> d.imm
	case fnSRAI:
		v = uint32(int32(c.Regs[d.rs1]) >> d.imm)
	case fnLUI:
		v = d.imm
	}
	c.setRegFast(d.rd, v)
	c.PC = instPC + 4
	return StepResult{Cycles: isa.CycALU}
}

// branch resolves a predecoded conditional branch. d.imm carries the
// taken displacement (offset*4+4), matching the slow path's
// instPC + 4 + offset*4 arithmetic modulo 2^32.
func (c *CPU) branch(taken bool, d *decoded, instPC uint32) StepResult {
	if taken {
		c.PC = instPC + d.imm
		return StepResult{Cycles: isa.CycTaken}
	}
	c.PC = instPC + 4
	return StepResult{Cycles: isa.CycBranch}
}
