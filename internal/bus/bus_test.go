package bus

import (
	"testing"
	"testing/quick"
)

type echoDev struct {
	lastPort  uint16
	lastValue uint32
	readVal   uint32
}

func (d *echoDev) PortRead(p uint16) uint32 {
	d.lastPort = p
	return d.readVal
}
func (d *echoDev) PortWrite(p uint16, v uint32) { d.lastPort, d.lastValue = p, v }

func TestMemoryAccessors(t *testing.T) {
	b := New(4096)
	if !b.Write32(0x100, 0xA1B2C3D4) {
		t.Fatal("write failed")
	}
	if v, ok := b.Read32(0x100); !ok || v != 0xA1B2C3D4 {
		t.Fatalf("read32 %x %v", v, ok)
	}
	if v, ok := b.Read16(0x100); !ok || v != 0xC3D4 {
		t.Fatalf("read16 %x", v)
	}
	if v, ok := b.Read8(0x103); !ok || v != 0xA1 {
		t.Fatalf("read8 %x", v)
	}
	b.Write16(0x200, 0xBEEF)
	b.Write8(0x202, 0x7F)
	if v, _ := b.Read32(0x200); v != 0x7FBEEF {
		t.Fatalf("mixed width %x", v)
	}
}

func TestBoundsChecking(t *testing.T) {
	b := New(4096)
	if _, ok := b.Read32(4093); ok {
		t.Fatal("straddling read allowed")
	}
	if b.Write8(4096, 1) {
		t.Fatal("oob write allowed")
	}
	if b.InRAM(4092, 4) != true || b.InRAM(4093, 4) != false {
		t.Fatal("InRAM boundary wrong")
	}
	// Overflow: addr+n wrapping must not pass.
	if b.InRAM(0xFFFFFFFF, 2) {
		t.Fatal("wrapping range allowed")
	}
}

func TestPortRelativeDecoding(t *testing.T) {
	b := New(64)
	d := &echoDev{readVal: 42}
	b.MapPorts(0x3F8, 8, d)
	if v := b.ReadPort(0x3F9); v != 42 {
		t.Fatalf("read %d", v)
	}
	if d.lastPort != 1 {
		t.Fatalf("device saw absolute port %d, want relative 1", d.lastPort)
	}
	b.WritePort(0x3FF, 7)
	if d.lastPort != 7 || d.lastValue != 7 {
		t.Fatalf("relative write port=%d val=%d", d.lastPort, d.lastValue)
	}
}

func TestUnmappedPortsFloat(t *testing.T) {
	b := New(64)
	if v := b.ReadPort(0x9999); v != 0xFFFFFFFF {
		t.Fatalf("unmapped read %x", v)
	}
	b.WritePort(0x9999, 1) // must not panic
}

func TestPortTap(t *testing.T) {
	b := New(64)
	d := &echoDev{readVal: 5}
	b.MapPorts(0x300, 4, d)
	var taps []uint16
	b.SetPortTap(func(port uint16, v uint32, write bool) { taps = append(taps, port) })
	b.ReadPort(0x301)
	b.WritePort(0x302, 9)
	if len(taps) != 2 || taps[0] != 0x301 || taps[1] != 0x302 {
		t.Fatalf("taps %v", taps)
	}
	b.SetPortTap(nil)
	b.ReadPort(0x301)
	if len(taps) != 2 {
		t.Fatal("tap not removed")
	}
}

func TestDMA(t *testing.T) {
	b := New(1024)
	data := []byte{9, 8, 7, 6}
	if !b.DMAWrite(100, data) {
		t.Fatal("dma write")
	}
	got := b.DMARead(100, 4)
	if string(got) != string(data) {
		t.Fatalf("dma read % x", got)
	}
	if b.DMARead(1022, 4) != nil {
		t.Fatal("oob dma read allowed")
	}
	if b.DMAWrite(1022, data) {
		t.Fatal("oob dma write allowed")
	}
}

// Property: 32-bit write/read round-trips at any aligned in-range address.
func TestWord32RoundTripProperty(t *testing.T) {
	b := New(1 << 16)
	f := func(addr, v uint32) bool {
		a := addr % (1<<16 - 4)
		if !b.Write32(a, v) {
			return false
		}
		got, ok := b.Read32(a)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: little-endian byte order — Read8 of each byte recomposes the
// word.
func TestLittleEndianProperty(t *testing.T) {
	b := New(4096)
	f := func(v uint32) bool {
		b.Write32(0, v)
		b0, _ := b.Read8(0)
		b1, _ := b.Read8(1)
		b2, _ := b.Read8(2)
		b3, _ := b.Read8(3)
		return uint32(b0)|uint32(b1)<<8|uint32(b2)<<16|uint32(b3)<<24 == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
