// Package bus models the physical side of the target machine: flat RAM and
// a 16-bit port-I/O space, shared by the CPU and DMA-capable devices.
//
// HX32 devices are programmed exclusively through port I/O (the PC/AT
// heritage the paper assumes: PIC at 0x20, PIT at 0x40, UARTs at 0x2F8/0x3F8)
// which keeps the lightweight VMM's selective-trapping story identical to
// the x86 TSS I/O-permission-bitmap mechanism.
package bus

import (
	"encoding/binary"
	"sync"
)

// PortHandler is implemented by devices that respond to port I/O. All
// device registers are 32 bits wide. The port passed to the handler is
// relative to the base the device was mapped at.
type PortHandler interface {
	PortRead(port uint16) uint32
	PortWrite(port uint16, v uint32)
}

// PortTap observes every port access after it completes; the hosted VMM
// uses taps to charge device-emulation costs without perturbing behaviour.
type PortTap func(port uint16, v uint32, write bool)

// WriteNotify observes every completed write into RAM — CPU stores,
// page-walk A/D updates, DMA, image loads. The CPU installs one to
// invalidate predecoded instructions covering the written range; it must
// not touch RAM itself.
type WriteNotify func(addr, n uint32)

// Bus is the physical memory and I/O interconnect.
type Bus struct {
	ram         []byte
	ports       map[uint16]portEntry
	tap         PortTap
	writeNotify WriteNotify
}

type portEntry struct {
	h    PortHandler
	base uint16
}

// ramPool recycles physical-memory slices across machine lifetimes.
// Allocating tens of megabytes of zeroed RAM per machine is a real cost
// for callers that build machines in a loop (the fleet runner, the
// trace farm, benchmarks): the allocator must clear the whole reused
// span even though a released machine knows — via the CPU's
// write-coverage map — that only a few blocks were ever dirtied. Every
// slice in the pool is fully zero; ReclaimRAM is the only producer and
// its callers re-zero exactly the covered blocks before handing the
// slice back.
var ramPool sync.Pool

// New creates a bus with ramSize bytes of RAM (all zero).
func New(ramSize int) *Bus {
	return &Bus{
		ram:   acquireRAM(ramSize),
		ports: make(map[uint16]portEntry),
	}
}

func acquireRAM(n int) []byte {
	if v := ramPool.Get(); v != nil {
		if ram := v.([]byte); len(ram) == n {
			return ram
		}
		// Wrong size: drop it. In practice every machine of a process
		// uses one RAM size, so the pool is homogeneous.
	}
	return make([]byte, n)
}

// ReclaimRAM pushes a fully re-zeroed RAM slice into the pool for the
// next New to reuse. The caller (machine.Release) must have zeroed
// every byte the machine ever wrote and must not touch the slice again.
func ReclaimRAM(ram []byte) { ramPool.Put(ram) }

// RAMSize returns the installed physical memory size.
func (b *Bus) RAMSize() uint32 { return uint32(len(b.ram)) }

// RAM exposes physical memory for loaders and DMA engines. Devices must
// bound-check with InRAM before writing.
func (b *Bus) RAM() []byte { return b.ram }

// InRAM reports whether [addr, addr+n) lies inside physical memory.
func (b *Bus) InRAM(addr, n uint32) bool {
	end := uint64(addr) + uint64(n)
	return end <= uint64(len(b.ram))
}

// MapPorts registers a handler for count consecutive ports starting at
// base. The handler sees ports relative to base.
func (b *Bus) MapPorts(base uint16, count int, h PortHandler) {
	for i := 0; i < count; i++ {
		b.ports[base+uint16(i)] = portEntry{h: h, base: base}
	}
}

// SetPortTap installs an observer for all port traffic (nil to remove).
func (b *Bus) SetPortTap(t PortTap) { b.tap = t }

// SetWriteNotify installs the RAM-write observer (nil to remove).
func (b *Bus) SetWriteNotify(f WriteNotify) { b.writeNotify = f }

// NotifyWrite reports an out-of-band write of n bytes at addr performed
// through a slice obtained from RAM() (in-place DMA fills). Devices that
// bypass Write*/DMAWrite must call it after mutating memory.
func (b *Bus) NotifyWrite(addr, n uint32) {
	if b.writeNotify != nil {
		b.writeNotify(addr, n)
	}
}

// ReadPort performs a port read. Unmapped ports float high (0xFFFFFFFF),
// as on a real ISA/PCI bus; no fault is raised.
func (b *Bus) ReadPort(port uint16) uint32 {
	v := uint32(0xFFFFFFFF)
	if e, ok := b.ports[port]; ok {
		v = e.h.PortRead(port - e.base)
	}
	if b.tap != nil {
		b.tap(port, v, false)
	}
	return v
}

// WritePort performs a port write; writes to unmapped ports are dropped.
func (b *Bus) WritePort(port uint16, v uint32) {
	if e, ok := b.ports[port]; ok {
		e.h.PortWrite(port-e.base, v)
	}
	if b.tap != nil {
		b.tap(port, v, true)
	}
}

// Read8 reads one byte of physical memory.
func (b *Bus) Read8(addr uint32) (byte, bool) {
	if !b.InRAM(addr, 1) {
		return 0, false
	}
	return b.ram[addr], true
}

// Read16 reads a little-endian halfword.
func (b *Bus) Read16(addr uint32) (uint16, bool) {
	if !b.InRAM(addr, 2) {
		return 0, false
	}
	return binary.LittleEndian.Uint16(b.ram[addr:]), true
}

// Read32 reads a little-endian word.
func (b *Bus) Read32(addr uint32) (uint32, bool) {
	if !b.InRAM(addr, 4) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b.ram[addr:]), true
}

// Write8 writes one byte.
func (b *Bus) Write8(addr uint32, v byte) bool {
	if !b.InRAM(addr, 1) {
		return false
	}
	b.ram[addr] = v
	if b.writeNotify != nil {
		b.writeNotify(addr, 1)
	}
	return true
}

// Write16 writes a little-endian halfword.
func (b *Bus) Write16(addr uint32, v uint16) bool {
	if !b.InRAM(addr, 2) {
		return false
	}
	binary.LittleEndian.PutUint16(b.ram[addr:], v)
	if b.writeNotify != nil {
		b.writeNotify(addr, 2)
	}
	return true
}

// Write32 writes a little-endian word.
func (b *Bus) Write32(addr uint32, v uint32) bool {
	if !b.InRAM(addr, 4) {
		return false
	}
	binary.LittleEndian.PutUint32(b.ram[addr:], v)
	if b.writeNotify != nil {
		b.writeNotify(addr, 4)
	}
	return true
}

// DMARead copies n bytes of physical memory into a fresh slice (device →
// host direction helper). Returns nil if out of range.
func (b *Bus) DMARead(addr, n uint32) []byte {
	if !b.InRAM(addr, n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, b.ram[addr:addr+n])
	return out
}

// DMAWrite copies data into physical memory at addr. Reports success.
func (b *Bus) DMAWrite(addr uint32, data []byte) bool {
	if !b.InRAM(addr, uint32(len(data))) {
		return false
	}
	copy(b.ram[addr:], data)
	if b.writeNotify != nil {
		b.writeNotify(addr, uint32(len(data)))
	}
	return true
}

// LoadImage copies a program image into RAM at its start address.
func (b *Bus) LoadImage(start uint32, data []byte) bool {
	return b.DMAWrite(start, data)
}
