package debugger

import (
	"fmt"
	"net"

	"lvmm/internal/machine"
	"lvmm/internal/rsp"
)

// SimTransport drives an in-process simulated target deterministically:
// every exchange injects bytes into the target's debug UART and runs the
// machine until the stub's reply emerges. No goroutines, no wall-clock —
// sessions are perfectly reproducible.
type SimTransport struct {
	m   *machine.Machine
	dec rsp.Decoder
	rx  []rsp.Event
	// BudgetCycles bounds how long one exchange may run the machine
	// (virtual cycles). Default one virtual second.
	BudgetCycles uint64
	// SliceCycles is the run granularity between reply checks.
	SliceCycles uint64
	out         []byte
}

// NewSimTransport attaches to a machine's debug UART.
func NewSimTransport(m *machine.Machine) *SimTransport {
	t := &SimTransport{
		m:            m,
		BudgetCycles: 1_260_000_000,
		SliceCycles:  100_000,
	}
	m.Dbg.SetTX(func(b byte) { t.out = append(t.out, b) })
	return t
}

// pump decodes any bytes the stub transmitted.
func (t *SimTransport) pump() {
	if len(t.out) > 0 {
		t.rx = append(t.rx, t.dec.Feed(t.out)...)
		t.out = t.out[:0]
	}
}

// nextPacket pops the next packet event, running the machine as needed.
func (t *SimTransport) nextPacket() (string, error) {
	deadline := t.m.Clock() + t.BudgetCycles
	for {
		t.pump()
		for len(t.rx) > 0 {
			ev := t.rx[0]
			t.rx = t.rx[1:]
			if ev.Kind == 'p' {
				return string(ev.Payload), nil
			}
			// Acks and stray bytes are consumed silently.
		}
		if t.m.Clock() >= deadline {
			return "", fmt.Errorf("debugger: target did not reply within %d cycles (stub dead?)", t.BudgetCycles)
		}
		t.m.Run(t.m.Clock() + t.SliceCycles)
	}
}

// Exchange implements Transport.
func (t *SimTransport) Exchange(payload string) (string, error) {
	t.m.Dbg.InjectRX(rsp.Encode([]byte(payload)))
	return t.nextPacket()
}

// Notify implements Transport.
func (t *SimTransport) Notify(payload string) error {
	t.m.Dbg.InjectRX(rsp.Encode([]byte(payload)))
	// Give the stub a chance to consume the command.
	t.m.Run(t.m.Clock() + t.SliceCycles)
	return nil
}

// WaitStop implements Transport.
func (t *SimTransport) WaitStop() (string, error) { return t.nextPacket() }

// SendBreak implements Transport.
func (t *SimTransport) SendBreak() (string, error) {
	t.m.Dbg.InjectRX([]byte{rsp.InterruptByte})
	return t.nextPacket()
}

// ConnTransport runs RSP over a real byte stream (net.Conn or any
// ReadWriter with the same semantics) for live targets started by
// cmd/lvmm-target.
type ConnTransport struct {
	conn net.Conn
	dec  rsp.Decoder
	rx   []rsp.Event
	buf  [512]byte
}

// NewConnTransport wraps an established connection.
func NewConnTransport(conn net.Conn) *ConnTransport {
	return &ConnTransport{conn: conn}
}

func (t *ConnTransport) nextPacket() (string, error) {
	for {
		for len(t.rx) > 0 {
			ev := t.rx[0]
			t.rx = t.rx[1:]
			if ev.Kind == 'p' {
				return string(ev.Payload), nil
			}
		}
		n, err := t.conn.Read(t.buf[:])
		if err != nil {
			return "", err
		}
		t.rx = append(t.rx, t.dec.Feed(t.buf[:n])...)
	}
}

// Exchange implements Transport.
func (t *ConnTransport) Exchange(payload string) (string, error) {
	if _, err := t.conn.Write(rsp.Encode([]byte(payload))); err != nil {
		return "", err
	}
	return t.nextPacket()
}

// Notify implements Transport.
func (t *ConnTransport) Notify(payload string) error {
	_, err := t.conn.Write(rsp.Encode([]byte(payload)))
	return err
}

// WaitStop implements Transport.
func (t *ConnTransport) WaitStop() (string, error) { return t.nextPacket() }

// SendBreak implements Transport.
func (t *ConnTransport) SendBreak() (string, error) {
	if _, err := t.conn.Write([]byte{rsp.InterruptByte}); err != nil {
		return "", err
	}
	return t.nextPacket()
}
