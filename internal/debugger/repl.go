package debugger

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lvmm/internal/asm"
	"lvmm/internal/isa"
)

// REPL is the interactive command layer of the host-side remote debugger:
// the "receives debugging commands from a user" box of Figure 2.1. It is
// also usable programmatically (the debug-session example scripts it).
type REPL struct {
	c   *Client
	out io.Writer
	// Symbols, when set (from an assembler image), enables symbolic
	// addresses and annotated disassembly.
	Symbols map[string]uint32
}

// NewREPL creates a REPL writing human output to out.
func NewREPL(c *Client, out io.Writer) *REPL {
	return &REPL{c: c, out: out, Symbols: map[string]uint32{}}
}

// LoadSymbols adopts an image's symbol table.
func (r *REPL) LoadSymbols(img *asm.Image) {
	for k, v := range img.Symbols {
		r.Symbols[k] = v
	}
}

func (r *REPL) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

// addr parses a numeric or symbolic address.
func (r *REPL) addr(s string) (uint32, error) {
	if v, ok := r.Symbols[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad address %q (hex or symbol)", s)
	}
	return uint32(v), nil
}

// symFor names an address if a symbol covers it.
func (r *REPL) symFor(a uint32) string {
	bestName, bestVal, found := "", uint32(0), false
	for n, v := range r.Symbols {
		if v <= a && (!found || v > bestVal || (v == bestVal && n < bestName)) {
			bestName, bestVal, found = n, v, true
		}
	}
	if !found || a-bestVal > 0x1000 {
		return ""
	}
	if a == bestVal {
		return " <" + bestName + ">"
	}
	return fmt.Sprintf(" <%s+%d>", bestName, a-bestVal)
}

// Execute runs one command line. It returns io.EOF for quit.
func (r *REPL) Execute(line string) error {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help", "h":
		r.printf("%s", helpText)
	case "quit", "q":
		return io.EOF
	case "regs", "r":
		return r.cmdRegs()
	case "set":
		return r.cmdSet(args)
	case "x", "read":
		return r.cmdRead(args)
	case "w", "write":
		return r.cmdWrite(args)
	case "b", "break":
		return r.cmdBreak(args, false)
	case "hb", "hbreak":
		return r.cmdBreak(args, true)
	case "d", "delete":
		return r.cmdDelete(args)
	case "watch":
		return r.cmdWatch(args)
	case "unwatch":
		if len(args) != 1 {
			return fmt.Errorf("usage: unwatch ADDR")
		}
		a, err := r.addr(args[0])
		if err != nil {
			return err
		}
		return r.c.ClearWatch(a)
	case "c", "continue":
		stop, err := r.c.Continue()
		if err != nil {
			return err
		}
		return r.reportStop(stop)
	case "s", "step":
		n := 1
		if len(args) == 1 {
			if v, err := strconv.Atoi(args[0]); err == nil && v > 0 {
				n = v
			}
		}
		var stop StopInfo
		var err error
		for i := 0; i < n; i++ {
			stop, err = r.c.StepInstr()
			if err != nil {
				return err
			}
		}
		return r.reportStop(stop)
	case "int", "interrupt":
		stop, err := r.c.Interrupt()
		if err != nil {
			return err
		}
		return r.reportStop(stop)
	case "rs", "rstep":
		n := uint64(1)
		if len(args) == 1 {
			if v, err := strconv.ParseUint(args[0], 10, 64); err == nil && v > 0 {
				n = v
			}
		}
		stop, err := r.c.ReverseStepN(n)
		if err != nil {
			return err
		}
		return r.reportStop(stop)
	case "rc", "rcont":
		stop, err := r.c.ReverseContinue()
		if err != nil {
			return err
		}
		return r.reportStop(stop)
	case "checkpoint":
		out, err := r.c.Monitor("checkpoint")
		if err != nil {
			return err
		}
		r.printf("%s", out)
	case "dis", "disas":
		return r.cmdDisas(args)
	case "sym", "symbols":
		r.cmdSymbols(args)
	case "monitor", "mon":
		out, err := r.c.Monitor(strings.Join(args, " "))
		if err != nil {
			return err
		}
		r.printf("%s", out)
	case "detach":
		return r.c.Detach()
	default:
		r.printf("unknown command %q; try help\n", cmd)
	}
	return nil
}

const helpText = `commands:
  regs                    show registers
  set REG VALUE           write a register (r0..r15, pc, psr)
  x ADDR [N]              read N (default 16) bytes at hex/symbol ADDR
  w ADDR BYTE...          write bytes
  b ADDR | hb ADDR        set software / hardware breakpoint
  d ADDR                  delete breakpoint
  watch ADDR [LEN]        stop when the guest writes [ADDR, ADDR+LEN)
  unwatch ADDR            remove a watchpoint
  c                       continue until stop
  s [N]                   step N instructions
  int                     interrupt (Ctrl-C) the running guest
  rstep [N]               time travel: step N instructions backwards
  rcont                   time travel: run backwards to the previous
                          breakpoint/watchpoint crossing
  checkpoint              time travel: snapshot here to speed up reverse ops
  dis [ADDR [N]]          disassemble N (default 8) instructions
  sym [PREFIX]            list symbols
  monitor CMD             target-side command (info, breaks)
  quit
`

func (r *REPL) reportStop(stop StopInfo) error {
	regs, err := r.c.Regs()
	if err != nil {
		return err
	}
	r.printf("stopped (signal %d) at pc=%08x%s\n", stop.Signal, regs[16], r.symFor(regs[16]))
	return r.disasAt(regs[16], 1)
}

func (r *REPL) cmdRegs() error {
	regs, err := r.c.Regs()
	if err != nil {
		return err
	}
	for i := 0; i < 16; i++ {
		r.printf("%-5s %08x  ", isa.RegName(i), regs[i])
		if i%4 == 3 {
			r.printf("\n")
		}
	}
	r.printf("pc    %08x%s\n", regs[16], r.symFor(regs[16]))
	r.printf("psr   %08x (cpl=%d if=%v)\n", regs[17], isa.CPL(regs[17]), regs[17]&isa.PSRIF != 0)
	return nil
}

func (r *REPL) cmdSet(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: set REG VALUE")
	}
	idx := -1
	switch strings.ToLower(args[0]) {
	case "pc":
		idx = 16
	case "psr":
		idx = 17
	case "sp":
		idx = isa.RegSP
	case "lr":
		idx = isa.RegLR
	default:
		for i := 0; i < 16; i++ {
			if isa.RegName(i) == strings.ToLower(args[0]) {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return fmt.Errorf("unknown register %q", args[0])
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 16, 32)
	if err != nil {
		return fmt.Errorf("bad value %q", args[1])
	}
	return r.c.WriteReg(idx, uint32(v))
}

func (r *REPL) cmdRead(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: x ADDR [N]")
	}
	a, err := r.addr(args[0])
	if err != nil {
		return err
	}
	n := 16
	if len(args) >= 2 {
		if v, err := strconv.Atoi(args[1]); err == nil {
			n = v
		}
	}
	data, err := r.c.ReadMem(a, n)
	if err != nil {
		return err
	}
	for off := 0; off < len(data); off += 16 {
		end := off + 16
		if end > len(data) {
			end = len(data)
		}
		r.printf("%08x: % x\n", a+uint32(off), data[off:end])
	}
	return nil
}

func (r *REPL) cmdWrite(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: w ADDR BYTE...")
	}
	a, err := r.addr(args[0])
	if err != nil {
		return err
	}
	var data []byte
	for _, s := range args[1:] {
		v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 8)
		if err != nil {
			return fmt.Errorf("bad byte %q", s)
		}
		data = append(data, byte(v))
	}
	return r.c.WriteMem(a, data)
}

func (r *REPL) cmdBreak(args []string, hw bool) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: b ADDR")
	}
	a, err := r.addr(args[0])
	if err != nil {
		return err
	}
	if err := r.c.SetBreak(a, hw); err != nil {
		return err
	}
	kind := "software"
	if hw {
		kind = "hardware"
	}
	r.printf("%s breakpoint at %08x%s\n", kind, a, r.symFor(a))
	return nil
}

func (r *REPL) cmdDelete(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: d ADDR")
	}
	a, err := r.addr(args[0])
	if err != nil {
		return err
	}
	// Try both kinds; the stub ignores absent ones.
	if err := r.c.ClearBreak(a, false); err != nil {
		return err
	}
	return r.c.ClearBreak(a, true)
}

func (r *REPL) cmdWatch(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: watch ADDR [LEN]")
	}
	a, err := r.addr(args[0])
	if err != nil {
		return err
	}
	length := uint32(4)
	if len(args) >= 2 {
		if v, err := strconv.ParseUint(args[1], 10, 32); err == nil && v > 0 {
			length = uint32(v)
		}
	}
	if err := r.c.SetWatch(a, length); err != nil {
		return err
	}
	r.printf("watchpoint on [%08x,%08x)%s\n", a, a+length, r.symFor(a))
	return nil
}

func (r *REPL) cmdDisas(args []string) error {
	var a uint32
	if len(args) >= 1 {
		var err error
		a, err = r.addr(args[0])
		if err != nil {
			return err
		}
	} else {
		regs, err := r.c.Regs()
		if err != nil {
			return err
		}
		a = regs[16]
	}
	n := 8
	if len(args) >= 2 {
		if v, err := strconv.Atoi(args[1]); err == nil && v > 0 {
			n = v
		}
	}
	return r.disasAt(a, n)
}

func (r *REPL) disasAt(a uint32, n int) error {
	data, err := r.c.ReadMem(a, n*4)
	if err != nil {
		return err
	}
	for i := 0; i+4 <= len(data); i += 4 {
		w := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		pc := a + uint32(i)
		r.printf("%08x%-14s %s\n", pc, r.symFor(pc)+":", isa.Disassemble(pc, w))
	}
	return nil
}

func (r *REPL) cmdSymbols(args []string) {
	prefix := ""
	if len(args) >= 1 {
		prefix = args[0]
	}
	names := make([]string, 0, len(r.Symbols))
	for n := range r.Symbols {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool { return r.Symbols[names[i]] < r.Symbols[names[j]] })
	for _, n := range names {
		r.printf("%08x %s\n", r.Symbols[n], n)
	}
}
