package debugger

import (
	"strings"
	"testing"
)

// TestClientMemoryMap walks the full stack — client → RSP qXfer chunked
// transfer → monitor-resident stub → vmm.DebugTarget — and checks the
// guest's RAM layout comes back as the GDB memory-map document a real
// debugger would parse.
func TestClientMemoryMap(t *testing.T) {
	c, m, _, _ := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	doc, err := c.MemoryMap()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "<memory-map>") || !strings.Contains(doc, "</memory-map>") {
		t.Fatalf("not a memory-map document:\n%s", doc)
	}
	want := `<memory type="ram" start="0x0" length="0x4000000"/>`
	if m.Bus.RAMSize() != 64<<20 {
		t.Fatalf("test assumes the default 64 MB machine, got %d", m.Bus.RAMSize())
	}
	if !strings.Contains(doc, want) {
		t.Fatalf("document missing %q:\n%s", want, doc)
	}
}
