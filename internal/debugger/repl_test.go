package debugger

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// replSession builds a REPL over the standard debug-kernel session.
func replSession(t *testing.T) (*REPL, *bytes.Buffer) {
	t.Helper()
	c, _, _, img := session(t)
	var out bytes.Buffer
	r := NewREPL(c, &out)
	r.LoadSymbols(img)
	return r, &out
}

func run(t *testing.T, r *REPL, out *bytes.Buffer, cmd string) string {
	t.Helper()
	out.Reset()
	if err := r.Execute(cmd); err != nil && err != io.EOF {
		t.Fatalf("%q: %v", cmd, err)
	}
	return out.String()
}

func TestREPLRegsAndSet(t *testing.T) {
	r, out := replSession(t)
	run(t, r, out, "int")
	got := run(t, r, out, "regs")
	for _, want := range []string{"zero  00000000", "pc", "psr", "cpl=0"} {
		if !strings.Contains(got, want) {
			t.Errorf("regs output missing %q:\n%s", want, got)
		}
	}
	run(t, r, out, "set r5 deadbeef")
	got = run(t, r, out, "regs")
	if !strings.Contains(got, "deadbeef") {
		t.Errorf("set did not stick:\n%s", got)
	}
}

func TestREPLMemoryCommands(t *testing.T) {
	r, out := replSession(t)
	run(t, r, out, "int")
	run(t, r, out, "w 8800 11 22 33")
	got := run(t, r, out, "x 8800 3")
	if !strings.Contains(got, "11 22 33") {
		t.Errorf("x output:\n%s", got)
	}
	// Symbolic address.
	got = run(t, r, out, "x counter 4")
	if !strings.Contains(got, ":") {
		t.Errorf("symbolic read failed:\n%s", got)
	}
}

func TestREPLBreakContinueStep(t *testing.T) {
	r, out := replSession(t)
	run(t, r, out, "int")
	got := run(t, r, out, "b bump")
	if !strings.Contains(got, "software breakpoint") || !strings.Contains(got, "<bump>") {
		t.Errorf("b output:\n%s", got)
	}
	got = run(t, r, out, "c")
	if !strings.Contains(got, "signal 5") || !strings.Contains(got, "<bump>") {
		t.Errorf("c output:\n%s", got)
	}
	got = run(t, r, out, "s")
	if !strings.Contains(got, "<bump+4>") {
		t.Errorf("s output:\n%s", got)
	}
	run(t, r, out, "d bump")
	got = run(t, r, out, "monitor breaks")
	if !strings.Contains(got, "no breakpoints") {
		t.Errorf("breaks after delete:\n%s", got)
	}
}

func TestREPLDisassembly(t *testing.T) {
	r, out := replSession(t)
	run(t, r, out, "int")
	got := run(t, r, out, "dis bump 3")
	for _, want := range []string{"<bump>", "addi", "jalr"} {
		if !strings.Contains(got, want) {
			t.Errorf("dis missing %q:\n%s", want, got)
		}
	}
}

func TestREPLSymbols(t *testing.T) {
	r, out := replSession(t)
	got := run(t, r, out, "sym b")
	if !strings.Contains(got, "bump") {
		t.Errorf("sym output:\n%s", got)
	}
}

func TestREPLErrorsAndHelp(t *testing.T) {
	r, out := replSession(t)
	got := run(t, r, out, "help")
	if !strings.Contains(got, "breakpoint") {
		t.Errorf("help:\n%s", got)
	}
	got = run(t, r, out, "frobnicate")
	if !strings.Contains(got, "unknown command") {
		t.Errorf("unknown command handling:\n%s", got)
	}
	if err := r.Execute("x notasymbol"); err == nil {
		t.Error("bad address accepted")
	}
	if err := r.Execute("set r99 1"); err == nil {
		t.Error("bad register accepted")
	}
	if err := r.Execute("quit"); err != io.EOF {
		t.Errorf("quit returned %v", err)
	}
}

func TestREPLEmptyLineIsNoop(t *testing.T) {
	r, out := replSession(t)
	if got := run(t, r, out, "   "); got != "" {
		t.Errorf("blank line produced output %q", got)
	}
}
