package debugger

import (
	"testing"

	"lvmm/internal/guest"
	"lvmm/internal/isa"
	"lvmm/internal/machine"
	"lvmm/internal/vmm"
)

// TestDebugAcrossPrivilegeBoundary plants a breakpoint inside the user-
// mode application of the protection kernel and debugs across the
// CPL3/CPL0 boundary: the monitor-resident stub sees the guest's virtual
// privilege levels, reads user memory through the guest's page tables,
// and steps through a syscall transition.
func TestDebugAcrossPrivilegeBoundary(t *testing.T) {
	m := machine.New(machine.Config{ResetPC: guest.KernelBase})
	entry, err := guest.PrepareProtect(m, guest.ScenarioSyscalls)
	if err != nil {
		t.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	v.EnableDebugStub()
	if err := v.Launch(entry); err != nil {
		t.Fatal(err)
	}
	// Attach at reset: freeze before the first guest instruction so the
	// (short) scenario cannot outrun the debugger.
	v.SetFrozen(true)
	tr := NewSimTransport(m)
	c, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}

	// Break at the application's entry point (user mode).
	appEntry := guest.ProtectApp().Entry
	if err := c.SetBreak(appEntry, true); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if stop.Signal != 5 {
		t.Fatalf("signal %d", stop.Signal)
	}
	regs, err := c.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[16] != appEntry {
		t.Fatalf("stopped at %08x, want app entry %08x", regs[16], appEntry)
	}
	// The guest-view PSR shows user mode.
	if isa.CPL(regs[17]) != isa.CPLUser {
		t.Fatalf("guest-view CPL %d, want user", isa.CPL(regs[17]))
	}
	// r4 carries the scenario selector set by the kernel before IRET.
	if regs[4] != guest.ScenarioSyscalls {
		t.Fatalf("r4 = %d", regs[4])
	}
	// Read user-mode text through the guest's page tables.
	text, err := c.ReadMem(appEntry, 8)
	if err != nil || len(text) != 8 {
		t.Fatalf("user text read: %v", err)
	}

	// Step until the app executes its first syscall and lands in the
	// kernel: the stub must show the privilege transition.
	sawKernel := false
	for i := 0; i < 30; i++ {
		if _, err := c.StepInstr(); err != nil {
			t.Fatal(err)
		}
		regs, _ = c.Regs()
		if isa.CPL(regs[17]) == 0 && regs[16] < 0x4000 {
			sawKernel = true
			break
		}
	}
	if !sawKernel {
		t.Fatal("never observed the syscall transition to kernel mode")
	}

	// Resume to completion: five syscalls counted.
	if err := c.t.Notify("c"); err != nil {
		t.Fatal(err)
	}
	if reason := m.Run(m.Clock() + 100_000_000); reason != machine.StopGuestDone {
		t.Fatalf("stop %v", reason)
	}
	if got := guest.ReadProtectResults(m).Syscalls; got != 5 {
		t.Fatalf("syscalls %d", got)
	}
}
