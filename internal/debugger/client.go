// Package debugger is the host side of the paper's Figure 2.1: the
// "software remote debugger" that accepts user commands and drives the
// target's stub over the GDB Remote Serial Protocol.
package debugger

import (
	"fmt"
	"strings"

	"lvmm/internal/rsp"
)

// Transport moves RSP traffic between the debugger and the target.
type Transport interface {
	// Exchange sends one packet payload and returns the next packet
	// payload from the target (acknowledgements are consumed silently).
	Exchange(payload string) (string, error)
	// Notify sends a packet that has no immediate reply ('c').
	Notify(payload string) error
	// WaitStop blocks until an asynchronous stop packet arrives.
	WaitStop() (string, error)
	// SendBreak delivers the out-of-band interrupt byte and returns the
	// resulting stop packet.
	SendBreak() (string, error)
}

// StopInfo describes why the target stopped.
type StopInfo struct {
	Signal byte
	Raw    string
}

func parseStop(p string) (StopInfo, error) {
	if len(p) >= 3 && (p[0] == 'S' || p[0] == 'T') {
		var sig uint32
		if _, err := fmt.Sscanf(p[1:3], "%02x", &sig); err == nil {
			return StopInfo{Signal: byte(sig), Raw: p}, nil
		}
	}
	return StopInfo{Raw: p}, fmt.Errorf("debugger: unexpected stop packet %q", p)
}

// Client is a remote-debugging session.
type Client struct {
	t Transport
	// PendingStop holds an asynchronous stop notification that arrived
	// outside run control (e.g., the monitor froze the guest on a
	// violation while no continue was outstanding).
	PendingStop *StopInfo
}

// exchangeData performs a data exchange, stashing any asynchronous stop
// packets that arrive first (they are notifications, not replies).
func (c *Client) exchangeData(payload string) (string, error) {
	reply, err := c.t.Exchange(payload)
	for err == nil && isStopPacket(reply) {
		if si, perr := parseStop(reply); perr == nil {
			stop := si
			c.PendingStop = &stop
		}
		reply, err = c.t.WaitStop()
	}
	return reply, err
}

// isStopPacket recognises a bare S/T stop notification. Data replies are
// either even-length hex, "OK", or "Exx", so a 3-byte S/T packet is
// unambiguous.
func isStopPacket(p string) bool {
	return len(p) == 3 && (p[0] == 'S' || p[0] == 'T')
}

// New creates a client and performs the opening handshake.
func New(t Transport) (*Client, error) {
	c := &Client{t: t}
	if _, err := c.t.Exchange("qSupported"); err != nil {
		return nil, fmt.Errorf("debugger: handshake: %w", err)
	}
	return c, nil
}

// Regs reads all registers: r0..r15, PC (16), PSR (17).
func (c *Client) Regs() ([18]uint32, error) {
	var regs [18]uint32
	reply, err := c.exchangeData("g")
	if err != nil {
		return regs, err
	}
	if len(reply) != 18*8 {
		return regs, fmt.Errorf("debugger: bad g reply length %d", len(reply))
	}
	for i := 0; i < 18; i++ {
		v, err := rsp.ParseWord32(reply[i*8 : i*8+8])
		if err != nil {
			return regs, err
		}
		regs[i] = v
	}
	return regs, nil
}

// ReadReg reads one register.
func (c *Client) ReadReg(i int) (uint32, error) {
	reply, err := c.exchangeData(fmt.Sprintf("p%x", i))
	if err != nil {
		return 0, err
	}
	return rsp.ParseWord32(reply)
}

// WriteReg updates one register.
func (c *Client) WriteReg(i int, v uint32) error {
	return c.expectOK(fmt.Sprintf("P%x=%s", i, rsp.Word32(v)))
}

// ReadMem reads target memory.
func (c *Client) ReadMem(addr uint32, n int) ([]byte, error) {
	reply, err := c.exchangeData(fmt.Sprintf("m%x,%x", addr, n))
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(reply, "E") {
		return nil, fmt.Errorf("debugger: target error %s reading 0x%x", reply, addr)
	}
	return rsp.HexDecode(reply)
}

// WriteMem writes target memory.
func (c *Client) WriteMem(addr uint32, data []byte) error {
	return c.expectOK(fmt.Sprintf("M%x,%x:%s", addr, len(data), rsp.HexEncode(data)))
}

// ReadWord reads one 32-bit little-endian word.
func (c *Client) ReadWord(addr uint32) (uint32, error) {
	b, err := c.ReadMem(addr, 4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// SetBreak plants a breakpoint (software or hardware).
func (c *Client) SetBreak(addr uint32, hw bool) error {
	kind := "0"
	if hw {
		kind = "1"
	}
	return c.expectOK(fmt.Sprintf("Z%s,%x,4", kind, addr))
}

// ClearBreak removes a breakpoint.
func (c *Client) ClearBreak(addr uint32, hw bool) error {
	kind := "0"
	if hw {
		kind = "1"
	}
	return c.expectOK(fmt.Sprintf("z%s,%x,4", kind, addr))
}

// SetWatch plants a write watchpoint over [addr, addr+length).
func (c *Client) SetWatch(addr, length uint32) error {
	return c.expectOK(fmt.Sprintf("Z2,%x,%x", addr, length))
}

// ClearWatch removes a write watchpoint.
func (c *Client) ClearWatch(addr uint32) error {
	return c.expectOK(fmt.Sprintf("z2,%x,4", addr))
}

// Continue resumes the target and blocks until it stops again.
func (c *Client) Continue() (StopInfo, error) {
	if err := c.t.Notify("c"); err != nil {
		return StopInfo{}, err
	}
	p, err := c.t.WaitStop()
	if err != nil {
		return StopInfo{}, err
	}
	return parseStop(p)
}

// StepInstr executes one instruction.
func (c *Client) StepInstr() (StopInfo, error) {
	p, err := c.t.Exchange("s")
	if err != nil {
		return StopInfo{}, err
	}
	return parseStop(p)
}

// ReverseStepInstr travels one instruction backwards through a recorded
// timeline (RSP bs packet; replay-backed targets only).
func (c *Client) ReverseStepInstr() (StopInfo, error) { return c.ReverseStepN(1) }

// ReverseStepN travels n instructions backwards in a single target-side
// restore+replay round trip (our stub's `bs<hex>` extension of the RSP
// bs packet).
func (c *Client) ReverseStepN(n uint64) (StopInfo, error) {
	payload := "bs"
	if n != 1 {
		payload = fmt.Sprintf("bs%x", n)
	}
	p, err := c.t.Exchange(payload)
	if err != nil {
		return StopInfo{}, err
	}
	if p == "" {
		return StopInfo{}, fmt.Errorf("debugger: target does not support reverse execution")
	}
	return parseStop(p)
}

// ReverseContinue travels backwards to the most recent breakpoint or
// watchpoint crossing (RSP bc packet; replay-backed targets only).
func (c *Client) ReverseContinue() (StopInfo, error) {
	p, err := c.t.Exchange("bc")
	if err != nil {
		return StopInfo{}, err
	}
	if p == "" {
		return StopInfo{}, fmt.Errorf("debugger: target does not support reverse execution")
	}
	return parseStop(p)
}

// Interrupt stops a running target (Ctrl-C).
func (c *Client) Interrupt() (StopInfo, error) {
	p, err := c.t.SendBreak()
	if err != nil {
		return StopInfo{}, err
	}
	return parseStop(p)
}

// Status asks the target why it last stopped.
func (c *Client) Status() (StopInfo, error) {
	p, err := c.t.Exchange("?")
	if err != nil {
		return StopInfo{}, err
	}
	return parseStop(p)
}

// Monitor runs a target-side monitor command (qRcmd).
func (c *Client) Monitor(cmd string) (string, error) {
	reply, err := c.exchangeData("qRcmd," + rsp.HexEncode([]byte(cmd)))
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(reply, "E") && len(reply) == 3 {
		return "", fmt.Errorf("debugger: monitor command failed: %s", reply)
	}
	out, err := rsp.HexDecode(reply)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// MemoryMap fetches the target's memory-map XML document through the
// chunked qXfer:memory-map:read transfer, exactly as a real GDB would.
// Targets that do not serve the object return an empty document error.
func (c *Client) MemoryMap() (string, error) {
	const chunk = 0x800
	var doc strings.Builder
	for offset := 0; ; {
		reply, err := c.exchangeData(fmt.Sprintf("qXfer:memory-map:read::%x,%x", offset, chunk))
		if err != nil {
			return "", err
		}
		switch {
		case reply == "":
			return "", fmt.Errorf("debugger: target does not serve qXfer:memory-map:read")
		case strings.HasPrefix(reply, "E"):
			return "", fmt.Errorf("debugger: memory-map transfer failed: %s", reply)
		case reply[0] == 'm':
			// A stub may return fewer bytes than requested; advance by
			// what actually arrived, as real GDB does.
			if len(reply) == 1 {
				return "", fmt.Errorf("debugger: empty qXfer 'm' reply at offset %d", offset)
			}
			doc.WriteString(reply[1:])
			offset += len(reply) - 1
		case reply[0] == 'l':
			doc.WriteString(reply[1:])
			return doc.String(), nil
		default:
			return "", fmt.Errorf("debugger: unexpected qXfer reply %q", reply)
		}
	}
}

// Detach ends the session, resuming the target.
func (c *Client) Detach() error { return c.expectOK("D") }

func (c *Client) expectOK(payload string) error {
	reply, err := c.exchangeData(payload)
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("debugger: target replied %q to %q", reply, payload)
	}
	return nil
}
