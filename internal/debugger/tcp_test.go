package debugger

import (
	"net"
	"testing"
	"time"

	"lvmm/internal/guest"
	"lvmm/internal/isa"
	"lvmm/internal/machine"
	"lvmm/internal/netsim"
	"lvmm/internal/vmm"
)

// TestRemoteDebugOverTCP exercises the deployment shape of cmd/lvmm-target
// + cmd/hxdbg: the simulated target runs in its own goroutine with the
// debug channel bridged to a real TCP socket, and the client debugs it
// through ConnTransport — host and target as separate machines, per the
// paper's Figure 2.1.
func TestRemoteDebugOverTCP(t *testing.T) {
	p := guest.DefaultParams(50)
	p.DurationTicks = 3000 // long-lived target
	recv := netsim.NewReceiver()
	m := machine.NewStreaming(p.BlockBytes, recv, guest.KernelBase)
	entry, err := guest.Prepare(m, p)
	if err != nil {
		t.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	v.EnableDebugStub()
	if err := v.Launch(entry); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Target side: accept one debugger and bridge it to the UART, then
	// run the machine in chunks until the test finishes (exactly what
	// cmd/lvmm-target does). IdleSleep keeps the frozen target alive in
	// wall-clock terms while the debugger works.
	m.IdleSleep = 20 * time.Microsecond
	done := make(chan struct{})
	defer close(done)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		m.Dbg.SetTX(func(b byte) { _, _ = conn.Write([]byte{b}) })
		go func() {
			buf := make([]byte, 256)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return
				}
				m.Dbg.InjectRX(buf[:n])
			}
		}()
		for {
			select {
			case <-done:
				return
			default:
			}
			m.Run(m.Clock() + uint64(isa.ClockHz))
		}
	}()

	conn, err := net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(8 * time.Second))

	c, err := New(NewConnTransport(conn))
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	stop, err := c.Interrupt()
	if err != nil {
		t.Fatalf("interrupt: %v", err)
	}
	if stop.Signal != 2 {
		t.Fatalf("signal %d", stop.Signal)
	}
	regs, err := c.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[16] == 0 {
		t.Fatal("pc is zero")
	}
	// Plant and hit a breakpoint over the real socket.
	sendOne := guest.Kernel().Symbols["send_one"]
	if err := c.SetBreak(sendOne, false); err != nil {
		t.Fatal(err)
	}
	stop, err = c.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if stop.Signal != 5 {
		t.Fatalf("breakpoint signal %d", stop.Signal)
	}
	regs, _ = c.Regs()
	if regs[16] != sendOne {
		t.Fatalf("stopped at %08x", regs[16])
	}
	if err := c.ClearBreak(sendOne, false); err != nil {
		t.Fatal(err)
	}
	out, err := c.Monitor("info")
	if err != nil || out == "" {
		t.Fatalf("monitor info over TCP: %q %v", out, err)
	}
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: two identical runs produce bit-identical results —
// the property every number in EXPERIMENTS.md relies on.
func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, uint64, uint64) {
		p := guest.DefaultParams(120)
		p.DurationTicks = 15
		recv := netsim.NewReceiver()
		m := machine.NewStreaming(p.BlockBytes, recv, guest.KernelBase)
		entry, err := guest.Prepare(m, p)
		if err != nil {
			t.Fatal(err)
		}
		v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
		if err := v.Launch(entry); err != nil {
			t.Fatal(err)
		}
		if r := m.Run(uint64(300) * isa.ClockHz / 100); r != machine.StopGuestDone {
			t.Fatalf("stop %v", r)
		}
		return m.Clock(), recv.Frames, v.Stats.Traps
	}
	c1, f1, t1 := runOnce()
	c2, f2, t2 := runOnce()
	if c1 != c2 || f1 != f2 || t1 != t2 {
		t.Fatalf("nondeterministic: clocks %d/%d frames %d/%d traps %d/%d",
			c1, c2, f1, f2, t1, t2)
	}
}
