package debugger

import (
	"strings"
	"testing"

	"lvmm/internal/asm"
	"lvmm/internal/gdbstub"
	"lvmm/internal/guest"
	"lvmm/internal/isa"
	"lvmm/internal/machine"
	"lvmm/internal/netsim"
	"lvmm/internal/vmm"
)

// debugKernel is a small guest with a recognisable structure: a counter
// loop calling a function, so breakpoints and stepping have targets.
const debugKernel = `
        .equ VTAB, 0x4000
        .org 0x1000
        _start:
            li   sp, 0x9000
            li   r1, VTAB
            movrc vbar, r1
            la   r2, fatal
            li   r3, 32
        vfill:
            sw   r2, 0(r1)
            addi r1, r1, 4
            addi r3, r3, -1
            bnez r3, vfill
            li   r1, 0x8000
            movrc ksp, r1
            li   r9, 0
        loop:
            call bump
            b    loop
        bump:
            addi r9, r9, 1
            sw   r9, counter(zero)
            ret
        fatal:
            b    .
        .align 4
        counter: .word 0
    `

// session boots the debug kernel under a lightweight VMM with the
// monitor-resident stub and returns a connected client plus symbols.
func session(t *testing.T) (*Client, *machine.Machine, *vmm.VMM, *asm.Image) {
	t.Helper()
	img, err := asm.Assemble(debugKernel)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Config{ResetPC: img.Entry})
	if err := m.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	v.EnableDebugStub()
	if err := v.Launch(img.Entry); err != nil {
		t.Fatal(err)
	}
	tr := NewSimTransport(m)
	c, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	return c, m, v, img
}

func TestInterruptAndInspect(t *testing.T) {
	c, _, v, _ := session(t)
	stop, err := c.Interrupt()
	if err != nil {
		t.Fatal(err)
	}
	if stop.Signal != 2 {
		t.Fatalf("signal %d", stop.Signal)
	}
	if !v.Frozen() {
		t.Fatal("guest not frozen after interrupt")
	}
	regs, err := c.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[16] < 0x1000 || regs[16] > 0x2000 {
		t.Fatalf("pc %08x outside kernel", regs[16])
	}
	// The guest believes it is privileged: virtual CPL0 in its PSR view.
	if isa.CPL(regs[17]) != 0 {
		t.Fatalf("guest-view CPL = %d", isa.CPL(regs[17]))
	}
}

func TestMemoryReadWrite(t *testing.T) {
	c, _, _, img := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	// Read kernel text and compare against the image.
	text, err := c.ReadMem(img.Entry, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if text[i] != img.Data[img.Entry-img.Start+uint32(i)] {
			t.Fatalf("text byte %d mismatch", i)
		}
	}
	// Write and read back scratch memory.
	if err := c.WriteMem(0x8800, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	back, err := c.ReadMem(0x8800, 5)
	if err != nil || string(back) != string([]byte{1, 2, 3, 4, 5}) {
		t.Fatalf("readback % x err %v", back, err)
	}
}

func TestRegisterWrite(t *testing.T) {
	c, m, _, _ := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteReg(5, 0xABCD1234); err != nil {
		t.Fatal(err)
	}
	if m.CPU.Regs[5] != 0xABCD1234 {
		t.Fatalf("r5 = %08x", m.CPU.Regs[5])
	}
	v, err := c.ReadReg(5)
	if err != nil || v != 0xABCD1234 {
		t.Fatalf("read back %08x err %v", v, err)
	}
}

func TestSoftwareBreakpoint(t *testing.T) {
	c, m, _, img := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	bump := img.Symbols["bump"]
	if err := c.SetBreak(bump, false); err != nil {
		t.Fatal(err)
	}
	counts := []uint32{}
	for i := 0; i < 3; i++ {
		stop, err := c.Continue()
		if err != nil {
			t.Fatalf("continue %d: %v", i, err)
		}
		if stop.Signal != 5 {
			t.Fatalf("signal %d", stop.Signal)
		}
		regs, _ := c.Regs()
		if regs[16] != bump {
			t.Fatalf("stopped at %08x, want %08x", regs[16], bump)
		}
		counts = append(counts, regs[9])
	}
	// Each continue runs one loop iteration: r9 increments by one between
	// stops (the increment happens after the breakpoint).
	if counts[1] != counts[0]+1 || counts[2] != counts[1]+1 {
		t.Fatalf("counter progression %v", counts)
	}
	// Clearing restores the original instruction.
	if err := c.ClearBreak(bump, false); err != nil {
		t.Fatal(err)
	}
	w, _ := m.CPU.ReadVirt32(bump)
	if isa.Opcode(w) == isa.OpBRK {
		t.Fatal("breakpoint not removed")
	}
}

func TestHardwareBreakpoint(t *testing.T) {
	c, _, _, img := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	bump := img.Symbols["bump"]
	if err := c.SetBreak(bump, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		stop, err := c.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if stop.Signal != 5 {
			t.Fatalf("signal %d", stop.Signal)
		}
		regs, _ := c.Regs()
		if regs[16] != bump {
			t.Fatalf("stop %d at %08x, want %08x", i, regs[16], bump)
		}
	}
}

func TestSingleStep(t *testing.T) {
	c, _, _, img := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	bump := img.Symbols["bump"]
	if err := c.SetBreak(bump, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Continue(); err != nil {
		t.Fatal(err)
	}
	// Step through bump: addi, sw, ret.
	want := []uint32{bump + 4, bump + 8}
	for _, w := range want {
		stop, err := c.StepInstr()
		if err != nil || stop.Signal != 5 {
			t.Fatalf("step: %v sig %d", err, stop.Signal)
		}
		regs, _ := c.Regs()
		if regs[16] != w {
			t.Fatalf("pc %08x, want %08x", regs[16], w)
		}
	}
	// The ret lands back in the loop.
	if _, err := c.StepInstr(); err != nil {
		t.Fatal(err)
	}
	regs, _ := c.Regs()
	loop := img.Symbols["loop"]
	if regs[16] != loop+4 { // return address: after the call
		t.Fatalf("after ret pc=%08x, want %08x", regs[16], loop+4)
	}
}

func TestMonitorInfoCommand(t *testing.T) {
	c, _, _, _ := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	out, err := c.Monitor("info")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lightweight VMM") {
		t.Fatalf("monitor info: %q", out)
	}
	out, err = c.Monitor("breaks")
	if err != nil || !strings.Contains(out, "no breakpoints") {
		t.Fatalf("breaks: %q err %v", out, err)
	}
}

func TestStatusQuery(t *testing.T) {
	c, _, _, _ := session(t)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Status()
	if err != nil || stop.Signal != 2 {
		t.Fatalf("status %v err %v", stop, err)
	}
}

// TestDebugWhileStreaming is the paper's headline scenario: the guest is
// pushing high-throughput I/O and the debugger interrupts it, inspects
// state, and resumes — without perturbing correctness.
func TestDebugWhileStreaming(t *testing.T) {
	p := guest.DefaultParams(100)
	p.DurationTicks = 30
	recv := netsim.NewReceiver()
	m := machine.NewStreaming(p.BlockBytes, recv, guest.KernelBase)
	entry, err := guest.Prepare(m, p)
	if err != nil {
		t.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	v.EnableDebugStub()
	if err := v.Launch(entry); err != nil {
		t.Fatal(err)
	}
	tr := NewSimTransport(m)
	c, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}

	// Let the stream get going (~120 ms), then break in.
	m.Run(m.Clock() + 150_000_000)
	stop, err := c.Interrupt()
	if err != nil {
		t.Fatal(err)
	}
	if stop.Signal != 2 {
		t.Fatalf("signal %d", stop.Signal)
	}
	regs, err := c.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[16] == 0 {
		t.Fatal("bogus PC")
	}
	// Inspect live kernel state: the sequence counter in guest memory.
	img := guest.Kernel()
	seqAddr := img.Symbols["seq"]
	seqVal, err := c.ReadWord(seqAddr)
	if err != nil {
		t.Fatal(err)
	}
	if seqVal == 0 {
		t.Fatal("no segments sent before interrupt")
	}
	// Resume and let the run complete.
	if _, err := tryContinueToDone(c, m); err != nil {
		t.Fatal(err)
	}
	if !recv.Clean() {
		t.Fatalf("stream corrupted by debug session: %s", recv.LastError())
	}
	res := guest.ReadResults(m)
	if res.Ticks != p.DurationTicks {
		t.Fatalf("ticks %d", res.Ticks)
	}
}

// tryContinueToDone resumes the target and runs the machine to guest-done
// (the continue never "stops" again, so drive the machine directly).
func tryContinueToDone(c *Client, m *machine.Machine) (machine.StopReason, error) {
	if err := c.t.Notify("c"); err != nil {
		return 0, err
	}
	reason := m.Run(m.Clock() + 2*1_260_000_000)
	return reason, nil
}

// TestStabilityContrast reproduces the paper's stability argument as a
// measurable contrast:
//
//   - monitor-resident stub (the paper's design): the guest wild-writes
//     everything it can reach, and debugging still works;
//   - guest-resident stub (conventional embedded debugger): the same wild
//     write destroys the debugger.
func TestStabilityContrast(t *testing.T) {
	// Wild guest: waits for a trigger, then scribbles over low memory
	// where the embedded stub keeps its state, then spins.
	wild := `
        .org 0x1000
        _start:
        wait:
            lw   r3, 0x7F0(zero)  ; trigger flag, set by the harness
            beqz r3, wait
            li   r1, 0x700        ; embedded-stub state block
            li   r2, 0xDEAD
            sw   r2, 0(r1)
            sw   r2, 4(r1)
        spin:
            b    spin
    `
	img := asm.MustAssemble(wild)

	t.Run("monitor-resident survives", func(t *testing.T) {
		m := machine.New(machine.Config{ResetPC: img.Entry})
		if err := m.LoadImage(img); err != nil {
			t.Fatal(err)
		}
		v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
		v.EnableDebugStub()
		if err := v.Launch(img.Entry); err != nil {
			t.Fatal(err)
		}
		tr := NewSimTransport(m)
		c, err := New(tr)
		if err != nil {
			t.Fatal(err)
		}
		m.Bus.Write32(0x7F0, 1)
		m.Run(m.Clock() + 10_000_000) // let the guest corrupt away
		if _, err := c.Interrupt(); err != nil {
			t.Fatalf("monitor-resident stub unreachable: %v", err)
		}
		if _, err := c.Regs(); err != nil {
			t.Fatalf("register access failed: %v", err)
		}
	})

	t.Run("guest-resident dies", func(t *testing.T) {
		m := machine.New(machine.Config{ResetPC: img.Entry})
		if err := m.LoadImage(img); err != nil {
			t.Fatal(err)
		}
		m.CPU.Reset(img.Entry)
		target := gdbstub.NewBareTarget(m)
		stub := gdbstub.NewGuestResident(target, m.Dbg, 0x700)
		target.OnStop(func(cause uint32) { stub.NotifyStop(5) })
		m.SetIdleHook(stub.Poll)
		// The embedded stub hooks the timer: poll periodically.
		var arm func()
		arm = func() { stub.Poll(); m.After(126_000, arm) }
		m.After(126_000, arm)

		tr := NewSimTransport(m)
		tr.BudgetCycles = 50_000_000 // fail fast
		// Handshake before corruption: works.
		c, err := New(tr)
		if err != nil {
			t.Fatalf("pre-corruption handshake failed: %v", err)
		}
		// Trigger the corruption and let the guest smash the stub state.
		m.Bus.Write32(0x7F0, 1)
		m.Run(m.Clock() + 10_000_000)
		if _, err := c.Regs(); err == nil {
			t.Fatal("embedded stub still responding after corruption")
		}
		if !stub.Dead() {
			t.Fatal("stub does not know it is dead")
		}
	})
}

// TestArmedDebugSessionStaysOnBurstEngine is the debugger-level face of
// page-granular observer arming: a live debug session that has planted a
// hardware breakpoint on a never-executed page must leave the streaming
// guest on the predecoded burst engine — breakpoints no longer silently
// force the per-instruction interpreter.
func TestArmedDebugSessionStaysOnBurstEngine(t *testing.T) {
	p := guest.DefaultParams(100)
	p.DurationTicks = 30
	recv := netsim.NewReceiver()
	m := machine.NewStreaming(p.BlockBytes, recv, guest.KernelBase)
	entry, err := guest.Prepare(m, p)
	if err != nil {
		t.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	v.EnableDebugStub()
	if err := v.Launch(entry); err != nil {
		t.Fatal(err)
	}
	tr := NewSimTransport(m)
	c, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}

	m.Run(m.Clock() + 50_000_000)
	if _, err := c.Interrupt(); err != nil {
		t.Fatal(err)
	}
	// A breakpoint on a page the kernel never executes.
	if err := c.SetBreak(0xE0000, true); err != nil {
		t.Fatal(err)
	}
	before := m.CPU.BurstTicks()
	beforeInstr := m.CPU.Stat.Instructions
	if _, err := tryContinueToDone(c, m); err != nil {
		t.Fatal(err)
	}
	if !recv.Clean() {
		t.Fatalf("stream corrupted: %s", recv.LastError())
	}
	burst := m.CPU.BurstTicks() - before
	instr := m.CPU.Stat.Instructions - beforeInstr
	if instr == 0 {
		t.Fatal("guest retired no instructions after resume")
	}
	// The overwhelming majority of post-resume instructions must have run
	// on the burst engine despite the armed breakpoint.
	if burst*10 < instr*9 {
		t.Fatalf("only %d of %d post-resume instructions ran on the burst engine", burst, instr)
	}
}
