package debugger

import (
	"strings"
	"testing"

	"lvmm/internal/guest"
	"lvmm/internal/machine"
	"lvmm/internal/netsim"
	"lvmm/internal/vmm"
)

// TestWatchpointOnKernelVariable stops the streaming guest the moment it
// writes its sequence counter — a data watchpoint through the full
// monitor + RSP stack.
func TestWatchpointOnKernelVariable(t *testing.T) {
	p := guest.DefaultParams(50)
	p.DurationTicks = 50
	recv := netsim.NewReceiver()
	m := machine.NewStreaming(p.BlockBytes, recv, guest.KernelBase)
	entry, err := guest.Prepare(m, p)
	if err != nil {
		t.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	v.EnableDebugStub()
	if err := v.Launch(entry); err != nil {
		t.Fatal(err)
	}
	v.SetFrozen(true) // attach at reset
	c, err := New(NewSimTransport(m))
	if err != nil {
		t.Fatal(err)
	}

	seqAddr := guest.Kernel().Symbols["seq"]
	if err := c.SetWatch(seqAddr, 4); err != nil {
		t.Fatal(err)
	}
	stop, err := c.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if stop.Signal != 5 {
		t.Fatalf("signal %d", stop.Signal)
	}
	// The write has committed (watch fires after the store): seq == 1.
	seq, err := c.ReadWord(seqAddr)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq at first watch hit = %d, want 1", seq)
	}
	// The stop is inside send_one (the only writer).
	regs, _ := c.Regs()
	sendOne := guest.Kernel().Symbols["send_one"]
	if regs[16] < sendOne || regs[16] > sendOne+0x200 {
		t.Fatalf("stopped at %08x, not inside send_one (%08x)", regs[16], sendOne)
	}

	// Second hit: seq == 2.
	if stop, err = c.Continue(); err != nil || stop.Signal != 5 {
		t.Fatalf("second continue: %v %v", stop, err)
	}
	if seq, _ = c.ReadWord(seqAddr); seq != 2 {
		t.Fatalf("seq at second hit = %d", seq)
	}

	// Remove the watch; the run completes and the stream validates.
	if err := c.ClearWatch(seqAddr); err != nil {
		t.Fatal(err)
	}
	if err := c.t.Notify("c"); err != nil {
		t.Fatal(err)
	}
	if reason := m.Run(m.Clock() + 2_000_000_000); reason != machine.StopGuestDone {
		t.Fatalf("stop %v", reason)
	}
	if !recv.Clean() {
		t.Fatalf("stream invalid after watch session: %s", recv.LastError())
	}
}

func TestREPLWatchCommands(t *testing.T) {
	r, out := replSession(t)
	run(t, r, out, "int")
	got := run(t, r, out, "watch counter 4")
	if !strings.Contains(got, "watchpoint on") || !strings.Contains(got, "<counter>") {
		t.Fatalf("watch output:\n%s", got)
	}
	got = run(t, r, out, "monitor breaks")
	if !strings.Contains(got, "watch0") {
		t.Fatalf("breaks listing:\n%s", got)
	}
	// The debug kernel's bump writes counter every iteration: continue
	// must stop on the write.
	got = run(t, r, out, "c")
	if !strings.Contains(got, "signal 5") {
		t.Fatalf("watch stop:\n%s", got)
	}
	run(t, r, out, "unwatch counter")
	got = run(t, r, out, "monitor breaks")
	if strings.Contains(got, "watch0") {
		t.Fatalf("watch not removed:\n%s", got)
	}
}
