package lvmm

import (
	"strings"
	"testing"

	"lvmm/internal/guest"
)

func TestQuickstartPath(t *testing.T) {
	w := WorkloadDefaults(100)
	w.Seconds = 0.2
	target, err := NewStreamingTarget(Lightweight, w)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := target.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean {
		t.Fatalf("stream invalid: %s", stats.ValidateErr)
	}
	if stats.AchievedMbps < 90 {
		t.Fatalf("achieved %.1f", stats.AchievedMbps)
	}
	if !strings.Contains(stats.String(), "stream clean") {
		t.Fatalf("stats string: %s", stats)
	}
	if target.Monitor() == nil || target.Receiver() == nil || target.Machine() == nil {
		t.Fatal("accessors returned nil")
	}
}

// TestSameImageAllPlatforms is the paper's "easily customized to a new
// OS" claim in executable form: the byte-identical guest kernel image
// boots and produces a valid stream on bare metal, under the lightweight
// VMM, and under the hosted VMM, with no platform-specific build.
func TestSameImageAllPlatforms(t *testing.T) {
	img := guest.Kernel() // the single image every platform boots
	var segments [3]uint64
	for i, p := range []Platform{BareMetal, Lightweight, HostedFull} {
		w := WorkloadDefaults(20) // below every platform's ceiling
		w.Seconds = 0.3
		target, err := NewStreamingTarget(p, w)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		stats, err := target.Run()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !stats.Clean {
			t.Fatalf("%v: %s", p, stats.ValidateErr)
		}
		if stats.AchievedMbps < 17 {
			t.Fatalf("%v: achieved %.1f at offered 20", p, stats.AchievedMbps)
		}
		segments[i] = stats.Segments
	}
	// All three platforms executed the same paced workload: the segment
	// counts agree (same pacing, same duration, same image).
	if segments[0] != segments[1] || segments[1] != segments[2] {
		t.Fatalf("segment counts diverge across platforms: %v", segments)
	}
	_ = img
}

func TestDebuggerOnFacade(t *testing.T) {
	w := WorkloadDefaults(50)
	w.Seconds = 0.3
	target, err := NewStreamingTarget(Lightweight, w)
	if err != nil {
		t.Fatal(err)
	}
	dbg, err := target.Debugger()
	if err != nil {
		t.Fatal(err)
	}
	target.RunFor(0.05)
	if _, err := dbg.Interrupt(); err != nil {
		t.Fatal(err)
	}
	regs, err := dbg.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[16] == 0 {
		t.Fatal("pc is zero")
	}
	if err := dbg.Detach(); err != nil {
		t.Fatal(err)
	}
	stats, err := target.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean {
		t.Fatalf("stream invalid after debug: %s", stats.ValidateErr)
	}
}

func TestBareMetalHasNoStub(t *testing.T) {
	target, err := NewStreamingTarget(BareMetal, WorkloadDefaults(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Debugger(); err == nil {
		t.Fatal("bare metal should not offer a monitor-resident stub")
	}
}

func TestWorkloadValidation(t *testing.T) {
	w := WorkloadDefaults(50)
	w.SegmentBytes = 1000
	if _, err := NewStreamingTarget(BareMetal, w); err == nil {
		t.Fatal("invalid segment size accepted")
	}
}

func TestPlatformStrings(t *testing.T) {
	for _, p := range []Platform{BareMetal, Lightweight, HostedFull} {
		if p.String() == "unknown platform" {
			t.Fatalf("platform %d has no name", p)
		}
	}
}

func TestFigure31Facade(t *testing.T) {
	fig := Figure31(Figure31Options{Rates: []float64{30}, DurationTicks: 10})
	if len(fig.Points) != 3 {
		t.Fatalf("platforms: %d", len(fig.Points))
	}
	s := fig.Summarize()
	if s.BareMax == 0 {
		t.Fatal("no bare-metal measurement")
	}
}
