package lvmm

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lvmm/internal/fleet"
	"lvmm/internal/perfmodel"
	"lvmm/internal/replay"
)

// regenGolden rewrites testdata/v2-golden.trc from the current engine.
// Run `go test -run TestV2GoldenReplaysBitIdentically -regen-golden .`
// only when the simulated timeline legitimately changes (which already
// breaks every replay test) — the committed golden is the proof that
// old v2 traces keep replaying through the compat loader.
var regenGolden = flag.Bool("regen-golden", false, "regenerate testdata/v2-golden.trc")

const goldenPath = "testdata/v2-golden.trc"

// goldenWorkload is the recording the golden file holds: small but real
// (interrupts, frames, two snapshot windows).
func goldenWorkload() Workload {
	w := WorkloadDefaults(50)
	w.Seconds = 0.1
	return w
}

// TestV2GoldenReplaysBitIdentically reads the committed legacy-format
// trace through the compatibility loader and replays it: the event
// timeline, final digest, and the re-measured statistics must all
// verify. This pins two invariants at once — the v2 container stays
// readable, and the simulated timeline it recorded stays reproducible.
func TestV2GoldenReplaysBitIdentically(t *testing.T) {
	if *regenGolden {
		target, err := NewStreamingTarget(Lightweight, goldenWorkload())
		if err != nil {
			t.Fatal(err)
		}
		rec := target.Record(RecordOptions{SnapshotInterval: 40_000_000, KeyframeEvery: 1})
		if _, err := target.Run(); err != nil {
			t.Fatal(err)
		}
		tr := rec.Finish()
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteV2(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d events, %d checkpoints)", goldenPath, len(tr.Events), len(tr.Checkpoints))
	}

	tr, err := replay.ReadTraceFile(goldenPath)
	if err != nil {
		t.Fatalf("compat loader rejected the golden v2 trace: %v", err)
	}
	if tr.Meta.Version != 2 {
		t.Fatalf("golden trace reports version %d, want 2", tr.Meta.Version)
	}
	if len(tr.Checkpoints) < 2 {
		t.Fatalf("golden trace has %d checkpoints, want ≥ 2", len(tr.Checkpoints))
	}
	rt, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Run()
	if err != nil {
		t.Fatalf("golden v2 trace diverged on replay: %v", err)
	}
	if !stats.Clean {
		t.Fatalf("golden replay stream not clean: %s", stats.ValidateErr)
	}
	if got := replay.Digest(rt.Machine(), rt.Monitor()); got != tr.EndDigest {
		t.Fatalf("final digest %#x, recorded %#x", got, tr.EndDigest)
	}
}

// TestRecordStreamRoundTrip records the streaming workload straight to a
// v3 container (the default hxreplay path) and replays it from disk —
// stats, digest, and timeline all bit-identical, with the trace carrying
// both keyframes and deltas plus a usable seek index.
func TestRecordStreamRoundTrip(t *testing.T) {
	w := WorkloadDefaults(100)
	w.Seconds = 0.2
	target, err := NewStreamingTarget(Lightweight, w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := target.RecordStream(&buf, RecordOptions{SnapshotInterval: 30_000_000, KeyframeEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	stats1, err := target.Run()
	if err != nil {
		t.Fatal(err)
	}
	sstats, err := rec.FinishStream()
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Deltas == 0 {
		t.Fatal("streamed recording produced no delta snapshots")
	}

	tr, err := replay.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Segments) == 0 {
		t.Fatal("streamed trace read back without a segment index")
	}
	events, snaps := 0, 0
	for _, sg := range tr.Segments {
		switch {
		case sg.IsEvents():
			events += sg.Events
		case sg.IsSnapshot():
			snaps++
		}
	}
	if events != len(tr.Events) || snaps != len(tr.Checkpoints) {
		t.Fatalf("index disagrees with payload: %d/%d events, %d/%d snapshots",
			events, len(tr.Events), snaps, len(tr.Checkpoints))
	}

	rt, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := rt.Run()
	if err != nil {
		t.Fatalf("streamed trace diverged on replay: %v", err)
	}
	if stats1 != stats2 {
		t.Fatalf("stats differ:\n  recorded: %v\n  replayed: %v", stats1, stats2)
	}

	// Time travel across delta boundaries on the replayed target.
	rp := rt.Replayer()
	last := tr.Checkpoints[len(tr.Checkpoints)-1]
	if err := rp.SeekInstr(last.Instr + 100); err != nil {
		t.Fatal(err)
	}
	if err := rp.ReverseStep(last.Instr/2 + 100); err != nil {
		t.Fatal(err)
	}
	if err := rp.SeekInstr(tr.EndInstr); err != nil {
		t.Fatal(err)
	}
	if got := replay.Digest(rt.Machine(), rt.Monitor()); got != tr.EndDigest {
		t.Fatalf("post-time-travel end digest %#x, recorded %#x", got, tr.EndDigest)
	}
}

// TestFleetRecordedTraceReplays runs a seeded fleet scenario with the
// Record option and replays the streamed trace through the public
// Replay path — proving the trace metadata (platform, resolved params,
// content seed) reconstructs the exact machine the fleet worker ran.
func TestFleetRecordedTraceReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.trc")
	sc := fleet.Scenario{
		Platform:      fleet.Lightweight,
		RateMbps:      80,
		DurationTicks: 20,
		Seed:          7,
		Record:        path,
	}
	res := fleet.RunOne(context.Background(), sc)
	if res.Err != "" {
		t.Fatalf("fleet run failed: %s", res.Err)
	}
	if res.TracePath != path || res.TraceBytes == 0 {
		t.Fatalf("missing trace report: path=%q bytes=%d", res.TracePath, res.TraceBytes)
	}

	tr, err := replay.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Seed != 7 {
		t.Fatalf("trace seed %d, want 7", tr.Meta.Seed)
	}
	rt, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Run()
	if err != nil {
		t.Fatalf("fleet-recorded trace diverged: %v", err)
	}
	if !stats.Clean {
		t.Fatalf("replayed stream not clean: %s", stats.ValidateErr)
	}
	if got := stats.AchievedMbps; got != res.AchievedMbps {
		t.Fatalf("replayed %.6f Mb/s, fleet measured %.6f", got, res.AchievedMbps)
	}

	// A Costs override cannot be reconstructed from metadata; such traces
	// must be refused by the public path, not replayed wrongly.
	costs := perfmodel.Lightweight()
	costs.WorldSwitchIn *= 2
	scC := sc
	scC.Record = filepath.Join(t.TempDir(), "custom.trc")
	scC.Costs = &costs
	resC := fleet.RunOne(context.Background(), scC)
	if resC.Err != "" {
		t.Fatalf("costs-override run failed: %s", resC.Err)
	}
	trC, err := replay.ReadTraceFile(scC.Record)
	if err != nil {
		t.Fatal(err)
	}
	if !trC.Meta.Custom {
		t.Fatal("costs-override trace not marked custom")
	}
	if _, err := Replay(trC); err == nil {
		t.Fatal("Replay accepted a custom trace it cannot reconstruct")
	}
}
