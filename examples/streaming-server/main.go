// Streaming-server: the paper's motivating appliance workload (a HiTactix
// video-streaming server pushing constant-rate UDP) measured on all three
// platforms across rates — a compact rendition of Figure 3.1 plus the
// headline ratios.
package main

import (
	"fmt"
	"log"

	"lvmm"
)

func main() {
	rates := []float64{25, 50, 100, 150, 200, 400, 660}
	platforms := []lvmm.Platform{lvmm.BareMetal, lvmm.Lightweight, lvmm.HostedFull}

	fmt.Printf("%-10s", "Mb/s")
	for _, p := range platforms {
		fmt.Printf(" | %-28v", p)
	}
	fmt.Println()

	maxRate := map[lvmm.Platform]float64{}
	for _, rate := range rates {
		fmt.Printf("%-10.0f", rate)
		for _, p := range platforms {
			w := lvmm.WorkloadDefaults(rate)
			w.Seconds = 0.4
			t, err := lvmm.NewStreamingTarget(p, w)
			if err != nil {
				log.Fatal(err)
			}
			stats, err := t.Run()
			if err != nil {
				log.Fatal(err)
			}
			if !stats.Clean {
				log.Fatalf("%v @ %.0f: %s", p, rate, stats.ValidateErr)
			}
			fmt.Printf(" | %7.1f Mb/s  %5.1f%% load   ", stats.AchievedMbps, stats.CPULoad*100)
			if stats.AchievedMbps > maxRate[p] {
				maxRate[p] = stats.AchievedMbps
			}
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Printf("max sustained: bare=%.0f  lightweight=%.0f  hosted=%.0f Mb/s\n",
		maxRate[lvmm.BareMetal], maxRate[lvmm.Lightweight], maxRate[lvmm.HostedFull])
	fmt.Printf("lightweight / hosted = %.2fx (paper: 5.4x)\n",
		maxRate[lvmm.Lightweight]/maxRate[lvmm.HostedFull])
	fmt.Printf("lightweight / bare   = %.0f%% (paper: ~26%%)\n",
		100*maxRate[lvmm.Lightweight]/maxRate[lvmm.BareMetal])
}
