// Debug-session: a scripted remote-debugging session against the guest OS
// while it is streaming at high rate — the paper's central use case. The
// host-side debugger interrupts the running kernel, inspects registers and
// live kernel data structures, plants a breakpoint on the transmit path,
// single-steps through it, and resumes; the stream completes unharmed.
package main

import (
	"fmt"
	"log"
	"os"

	"lvmm"
	"lvmm/internal/debugger"
	"lvmm/internal/guest"
)

func main() {
	w := lvmm.WorkloadDefaults(100)
	w.Seconds = 0.4
	target, err := lvmm.NewStreamingTarget(lvmm.Lightweight, w)
	if err != nil {
		log.Fatal(err)
	}

	dbg, err := target.Debugger()
	if err != nil {
		log.Fatal(err)
	}
	repl := debugger.NewREPL(dbg, os.Stdout)
	repl.LoadSymbols(guest.Kernel())

	// Let the stream run ~100 virtual ms, then break in.
	target.RunFor(0.1)

	script := []string{
		"int",            // stop the guest (Ctrl-C)
		"regs",           // inspect CPU state
		"dis",            // disassemble at the stop point
		"x seq 4",        // read a live kernel variable
		"b send_one",     // breakpoint on the transmit path
		"c",              // run to it
		"s 3",            // step through the dequeue
		"monitor info",   // ask the monitor about itself
		"monitor breaks", // list planted breakpoints
		"d send_one",     // clean up
	}
	for _, cmd := range script {
		fmt.Printf("\n(hxdbg) %s\n", cmd)
		if err := repl.Execute(cmd); err != nil {
			log.Fatalf("%s: %v", cmd, err)
		}
	}

	// Resume and let the run complete: debugging must not corrupt the
	// stream.
	fmt.Println("\n(hxdbg) c  [resuming to completion]")
	if err := repl.Execute("detach"); err != nil {
		log.Fatal(err)
	}
	stats, err := target.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(stats)
	if !stats.Clean {
		log.Fatal("stream corrupted by the debug session")
	}
	fmt.Println("stream validated end-to-end after the debug session")
}
