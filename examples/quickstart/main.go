// Quickstart: boot the HiTactix-stand-in guest on the lightweight VMM,
// stream the paper's workload for half a virtual second, and print the
// measurements — the smallest complete use of the library.
package main

import (
	"fmt"
	"log"

	"lvmm"
)

func main() {
	// The paper's §3 workload: read from three SCSI disks at a constant
	// rate, segment, transmit over gigabit Ethernet UDP.
	target, err := lvmm.NewStreamingTarget(lvmm.Lightweight, lvmm.WorkloadDefaults(150))
	if err != nil {
		log.Fatal(err)
	}

	stats, err := target.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats)

	// The monitor keeps per-event statistics: what trapped and how often.
	fmt.Println()
	fmt.Println("monitor statistics:")
	fmt.Print(target.Monitor().String())
}
