// Crash-investigation: the stability experiment from the paper's core
// argument. A buggy guest OS wild-writes through memory — including over
// the region where a conventional embedded debugger keeps its state, and
// at the monitor's own memory.
//
//   - Under the lightweight VMM, the monitor contains the damage, records
//     the violation, and the remote debugger performs a full post-mortem.
//   - With a conventional guest-resident stub on bare metal, the same bug
//     destroys the debugger itself.
//   - With the record/replay engine, the crash is captured as a trace and
//     investigated with time travel: from the wedge point, the debugger
//     runs *backwards* to the exact store that did the damage.
package main

import (
	"fmt"
	"log"
	"os"

	"lvmm/internal/asm"
	"lvmm/internal/debugger"
	"lvmm/internal/gdbstub"
	"lvmm/internal/machine"
	"lvmm/internal/replay"
	"lvmm/internal/vmm"
)

// buggyOS installs a trivial fault handler, does some "work", then a wild
// pointer walks over low memory (where the embedded stub lives) and
// finally dereferences into the monitor's region.
const buggyOS = `
        .equ VTAB, 0x4000
        .org 0x1000
        _start:
            li   sp, 0x9000
            li   r1, VTAB
            movrc vbar, r1
            la   r2, handler
            li   r3, 32
        vfill:
            sw   r2, 0(r1)
            addi r1, r1, 4
            addi r3, r3, -1
            bnez r3, vfill
            li   r1, 0x8000
            movrc ksp, r1

            ; "work" (several virtual milliseconds before the bug bites,
            ; so the debugger can be seen working beforehand)
            li   r9, 0
        work:
            addi r9, r9, 1
            li   r2, 3000000
            blt  r9, r2, work

            ; BUG 1: wild pointer scribbles over low memory, destroying
            ; anything that lives there (like an embedded debugger's state)
            li   r1, 0x600
        scribble:
            sw   r9, 0(r1)
            addi r1, r1, 4
            li   r2, 0x900
            blt  r1, r2, scribble

            ; BUG 2: dereference into the monitor's region (60 MB)
            li   r1, 0x3C00000
            sw   r9, 0(r1)

            ; if we get here the fault was reflected; record and spin
        handler:
            movcr r10, cause
            movcr r11, vaddr
        spin:
            b    spin
    `

func main() {
	img := asm.MustAssemble(buggyOS)

	fmt.Println("=== scenario 1: lightweight VMM (paper's design) ===")
	monitorScenario(img)

	fmt.Println()
	fmt.Println("=== scenario 2: conventional embedded stub on bare metal ===")
	embeddedScenario(img)

	fmt.Println()
	fmt.Println("=== scenario 3: record the crash, then time-travel to the bug ===")
	timeTravelScenario(img)
}

// buildCrashTarget constructs the monitored machine the same way twice:
// once to record, once to replay (replay requires identical construction).
func buildCrashTarget(img *asm.Image) (*machine.Machine, *vmm.VMM, *gdbstub.Stub) {
	m := machine.New(machine.Config{ResetPC: img.Entry})
	if err := m.LoadImage(img); err != nil {
		log.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	stub := v.EnableDebugStub()
	if err := v.Launch(img.Entry); err != nil {
		log.Fatal(err)
	}
	return m, v, stub
}

// timeTravelScenario records the crashing run into a trace, replays it,
// and investigates *backwards*: from the frozen wedge point, a watchpoint
// plus reverse-continue lands on the exact store that corrupted memory —
// a question post-mortem inspection alone cannot answer, because by the
// time the guest is frozen the damage is thousands of instructions old.
func timeTravelScenario(img *asm.Image) {
	// Record: run the buggy guest to its demise under the recorder.
	m, v, _ := buildCrashTarget(img)
	rec := replay.NewRecorder(m, v, nil,
		replay.TraceMeta{Custom: true, Label: "crash-investigation"},
		replay.Options{SnapshotInterval: 10_000_000})
	rec.Start()
	m.Run(m.Clock() + 50_000_000)
	tr := rec.Finish()
	fmt.Printf("recorded the crashing run: %d instructions, %d snapshots\n",
		tr.EndInstr, len(tr.Checkpoints))

	// Replay: rebuild the identical machine and attach the replayer; the
	// debug stub gains the RSP reverse-execution packets (bs/bc).
	m2, v2, stub2 := buildCrashTarget(img)
	rp, err := replay.NewReplayer(tr, m2, v2, nil)
	if err != nil {
		log.Fatal(err)
	}
	stub2.SetReverser(rp)

	dbg, err := debugger.New(debugger.NewSimTransport(m2))
	if err != nil {
		log.Fatal(err)
	}
	repl := debugger.NewREPL(dbg, os.Stdout)
	repl.LoadSymbols(img)

	// Seek to the wedge point — the violation that froze the guest — on a
	// clean re-execution of the recorded timeline.
	if err := rp.SeekInstr(tr.StartInstr()); err != nil {
		log.Fatal(err)
	}
	if err := rp.SeekInstr(tr.EndInstr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat the wedge point (instruction %d):\n", rp.Position())
	for _, cmd := range []string{"regs"} {
		fmt.Printf("\n(hxdbg) %s\n", cmd)
		if err := repl.Execute(cmd); err != nil {
			log.Fatal(err)
		}
	}

	// Time travel: who overwrote 0x700 (where the embedded stub of
	// scenario 2 kept its state)? Watch the address and run backwards.
	fmt.Println("\n(hxdbg) watch 700 4")
	fmt.Println("(hxdbg) rcont")
	if err := repl.Execute("watch 700 4"); err != nil {
		log.Fatal(err)
	}
	if err := repl.Execute("rcont"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlanded just after the store; the culprit and its operands:")
	for _, cmd := range []string{"dis scribble 3", "regs"} {
		fmt.Printf("\n(hxdbg) %s\n", cmd)
		if err := repl.Execute(cmd); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\n(hxdbg) rstep 2   # and two instructions further back")
	if err := repl.Execute("unwatch 700"); err != nil {
		log.Fatal(err)
	}
	if err := repl.Execute("rstep 2"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-> the trace pinpointed the wild store, travelling backwards from the crash")
}

func monitorScenario(img *asm.Image) {
	m := machine.New(machine.Config{ResetPC: img.Entry})
	if err := m.LoadImage(img); err != nil {
		log.Fatal(err)
	}
	v := vmm.Attach(m, vmm.Config{Mode: vmm.Lightweight})
	v.EnableDebugStub()
	var violations []uint32
	v.SetViolationHook(func(va uint32) { violations = append(violations, va) })
	if err := v.Launch(img.Entry); err != nil {
		log.Fatal(err)
	}

	dbg, err := debugger.New(debugger.NewSimTransport(m))
	if err != nil {
		log.Fatal(err)
	}

	// Let the guest crash itself (the monitor freezes it at the
	// violation because a debugger is attached).
	m.Run(m.Clock() + 50_000_000)
	fmt.Printf("monitor recorded %d violation(s); first at 0x%07x\n",
		len(violations), violations[0])

	// Full post-mortem through the monitor-resident stub.
	repl := debugger.NewREPL(dbg, os.Stdout)
	repl.LoadSymbols(img)
	for _, cmd := range []string{"regs", "dis", "monitor info"} {
		fmt.Printf("\n(hxdbg) %s\n", cmd)
		if err := repl.Execute(cmd); err != nil {
			log.Fatalf("debugging a crashed guest failed: %v", err)
		}
	}
	fmt.Println("\n-> debugger fully functional after the guest ran wild")
}

func embeddedScenario(img *asm.Image) {
	m := machine.New(machine.Config{ResetPC: img.Entry})
	if err := m.LoadImage(img); err != nil {
		log.Fatal(err)
	}
	m.CPU.Reset(img.Entry)
	target := gdbstub.NewBareTarget(m)
	// The conventional stub keeps its state in guest RAM at 0x700 —
	// right in the wild pointer's path.
	stub := gdbstub.NewGuestResident(target, m.Dbg, 0x700)
	target.OnStop(func(cause uint32) { stub.NotifyStop(5) })
	m.SetIdleHook(stub.Poll)
	var arm func()
	arm = func() { stub.Poll(); m.After(126_000, arm) }
	m.After(126_000, arm)

	tr := debugger.NewSimTransport(m)
	tr.BudgetCycles = 50_000_000
	dbg, err := debugger.New(tr)
	if err != nil {
		log.Fatal("pre-crash handshake should work: ", err)
	}
	fmt.Println("handshake before the crash: OK")

	m.Run(m.Clock() + 50_000_000) // guest scribbles over the stub

	if _, err := dbg.Regs(); err != nil {
		fmt.Printf("after the crash, the embedded debugger is gone: %v\n", err)
	} else {
		log.Fatal("unexpected: embedded stub survived")
	}
	fmt.Printf("stub self-check: dead=%v\n", stub.Dead())
	fmt.Println("-> the conventional approach loses the debugger exactly when it is needed")
}
